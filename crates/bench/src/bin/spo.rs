//! Sudden-power-off recovery cost and post-boot warm-up.
//!
//! Two experiments:
//!
//! 1. **Recovery-cost sweep** — the double-run SPO harness at one fixed
//!    cut point across checkpoint cadences. Denser checkpoints shrink
//!    the post-checkpoint OOB scan (the dominant boot cost) at the
//!    price of periodic metadata programs; every row re-asserts the
//!    zero-loss contract against the uninterrupted golden run.
//!
//! 2. **Cadence × cut-rate grid** — the cut point swept too: a seeded
//!    per-request Bernoulli trigger at several rates against several
//!    checkpoint cadences. Every cell that fires must recover with zero
//!    host-acknowledged loss, wherever the cut lands; cells whose draw
//!    never fires within the run double as the no-cut control.
//!
//! 3. **Warm-up curve** — recovery deliberately boots the OPM/ORT cold
//!    (monitored parameters are *re-derived*, never deserialized), so
//!    the first touch of each h-layer pays conservative full-verify
//!    programs and full read-retry searches. The curve shows mean
//!    tPROG and NumRetry per post-boot window converging back to the
//!    warm device's numbers as leaders are re-monitored.
//!
//! Run with: `cargo run --release -p bench --bin spo` (`--smoke` for
//! the CI-sized variant).

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{run_spo_eval, SpoConfig};
use cubeftl::{AgingState, FtlDriver, FtlKind, MetricRegistry, SpoTrigger, StandardWorkload};
use ssdsim::HostContext;
use std::time::Instant;

fn main() {
    let bench_wall = Instant::now();
    let mut reg = MetricRegistry::new();
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(20_000);
    let cut_at = cfg.requests * 3 / 4;

    banner("sudden power-off — recovery cost vs checkpoint cadence (OLTP, MidLife)");
    let mut t = Table::new([
        "ckpt every",
        "ckpts",
        "scanned/total blk",
        "OOB replayed",
        "torn WLs",
        "recovery ms",
        "lost LPNs",
    ]);
    for interval in [0u64, 1024, 256, 64] {
        let spo = SpoConfig {
            trigger: SpoTrigger::AtOps(cut_at),
            ckpt_interval_host_wls: interval,
        };
        let r = run_spo_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::MidLife,
            &cfg,
            &spo,
        );
        assert!(r.fired(), "cut at {cut_at} of {} must fire", cfg.requests);
        let rec = r.recovery.expect("recovery ran");
        assert!(
            r.lost_lpns.is_empty(),
            "host-acknowledged data lost at interval {interval}: {:?}",
            r.lost_lpns
        );
        t.row([
            if interval == 0 {
                "off".to_owned()
            } else {
                format!("{interval} WLs")
            },
            format!("{}", r.checkpoints_taken),
            format!("{}/{}", rec.blocks_scanned, r.total_blocks),
            format!("{}", rec.oob_records_replayed),
            format!("{}", rec.torn_wls_quarantined),
            format!("{:.3}", rec.nand_us / 1000.0),
            format!("{}", r.lost_lpns.len()),
        ]);
        let prefix = format!("spo.ckpt{interval}");
        reg.gauge(&format!("{prefix}.recovery_us"), rec.nand_us);
        reg.counter(&format!("{prefix}.blocks_scanned"), rec.blocks_scanned);
        reg.counter(&format!("{prefix}.oob_replayed"), rec.oob_records_replayed);
        reg.counter(&format!("{prefix}.checkpoints"), r.checkpoints_taken);
        reg.counter(&format!("{prefix}.lost_lpns"), r.lost_lpns.len() as u64);
    }
    t.print();
    println!(
        "\n(every row recovers the full L2P map from checkpoint + OOB scan alone and\n\
         \x20loses zero host-acknowledged writes; denser checkpoints bound the boot scan)"
    );

    banner("zero-loss grid — checkpoint cadence x seeded cut rate (OLTP, MidLife)");
    cadence_rate_grid(&cfg, &mut reg);

    banner("post-boot warm-up — cold OPM/ORT re-monitored on first touch per h-layer");
    warmup_curve(&mut reg);

    reg.gauge("bench.wall_ms", bench_wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("spo", &mut reg);
}

/// Sweeps the crash-consistency contract over where the cut lands, not
/// just when: a seeded Bernoulli trigger draws once per completed
/// request, so each (cadence, rate) cell cuts at a different,
/// reproducible point in the run — early cuts land mid-prefill-GC,
/// late cuts after many checkpoints. Every fired cell must lose zero
/// host-acknowledged LPNs.
fn cadence_rate_grid(cfg: &cubeftl::harness::EvalConfig, reg: &mut MetricRegistry) {
    let mut cfg = cfg.clone();
    cfg.requests = cfg.requests.min(6_000);
    let rates = [0.0005, 0.002, 0.008];
    let mut t = Table::new(["ckpt \\ rate", "0.0005", "0.002", "0.008"]);
    let mut fired_cells = 0u32;
    for interval in [0u64, 256, 64] {
        let mut cells = vec![if interval == 0 {
            "off".to_owned()
        } else {
            format!("{interval} WLs")
        }];
        for (i, &rate) in rates.iter().enumerate() {
            let spo = SpoConfig {
                // One seed per cell: the cut point varies across the
                // grid but every cell is individually reproducible.
                trigger: SpoTrigger::Seeded {
                    seed: 7 + i as u64,
                    rate,
                },
                ckpt_interval_host_wls: interval,
            };
            let r = run_spo_eval(
                FtlKind::Cube,
                StandardWorkload::Oltp,
                AgingState::MidLife,
                &cfg,
                &spo,
            );
            assert!(
                r.lost_lpns.is_empty(),
                "lost {} host-acknowledged LPNs at cadence {interval}, rate {rate}",
                r.lost_lpns.len()
            );
            cells.push(if r.fired() {
                fired_cells += 1;
                let rec = r.recovery.as_ref().expect("recovery ran");
                format!(
                    "cut@{} ({:.1}ms, 0 lost)",
                    r.pre_cut.completed,
                    rec.nand_us / 1000.0
                )
            } else {
                "no cut".to_owned()
            });
        }
        t.row(cells);
    }
    t.print();
    assert!(
        fired_cells >= 6,
        "the grid must actually exercise crashes ({fired_cells} cells fired)"
    );
    reg.counter("spo.grid.fired_cells", u64::from(fired_cells));
    println!(
        "\n(cells show the cut point in completed requests and the recovery NAND cost;\n\
         \x20every fired cell recovered with zero host-acknowledged loss)"
    );
}

/// Drives the cube FTL directly (no queueing) so the per-pass means
/// isolate the NAND-parameter warm-up from scheduling noise: write the
/// working set, power-cycle, then re-touch the same set pass after
/// pass. Pass 0 pays the cold-OPM/ORT tax (conservative full-verify
/// programs and full retry searches until each h-layer's leader is
/// re-monitored on first touch); later passes converge back to the
/// warm device's numbers.
fn warmup_curve(reg: &mut MetricRegistry) {
    let cfg = cubeftl::FtlConfig::small();
    let ctx = HostContext {
        buffer_utilization: 0.5,
        now_us: 0.0,
    };
    let working_set: u64 = 600;
    let passes = 4;

    // Warm baseline: same device, same passes, no power cycle.
    let mut warm = cubeftl::Ftl::cube(cfg);
    warm.set_aging(cubeftl::AgingState::MidLife);
    write_pass(&mut warm, working_set, &ctx, cfg.chips);
    let warm_tprog = write_pass(&mut warm, working_set, &ctx, cfg.chips);
    let warm_retry = read_pass_mean_retries(&mut warm, working_set, &ctx);

    // Crashed device: identical history, then a power cycle that tears
    // nothing — the curve below is purely the cold monitored state.
    let mut crashed = cubeftl::Ftl::cube(cfg);
    crashed.set_aging(cubeftl::AgingState::MidLife);
    write_pass(&mut crashed, working_set, &ctx, cfg.chips);
    let (mut cold, report) = crashed.power_cycle(&[]);
    println!(
        "recovery: {} blocks probed, {} scanned, {} OOB records replayed, {:.2} ms\n",
        report.blocks_probed,
        report.blocks_scanned,
        report.oob_records_replayed,
        report.nand_us / 1000.0
    );

    let mut t = Table::new(["post-boot pass", "tPROG (µs)", "vs warm", "NumRetry/read"]);
    let mut curve = Vec::new();
    for pass in 0..passes {
        let retries = read_pass_mean_retries(&mut cold, working_set, &ctx);
        let tprog = write_pass(&mut cold, working_set, &ctx, cfg.chips);
        t.row([
            format!("{pass}"),
            format!("{tprog:.1}"),
            format!("{:+.1}%", (tprog / warm_tprog - 1.0) * 100.0),
            format!("{retries:.3}"),
        ]);
        curve.push((tprog, retries));
    }
    t.print();
    let (first, last) = (curve[0], curve[passes - 1]);
    println!(
        "\nwarm baseline: tPROG {warm_tprog:.1} µs, {warm_retry:.3} retries/read; \
         cold pass 0 {:+.1}%, pass {} {:+.1}%",
        (first.0 / warm_tprog - 1.0) * 100.0,
        passes - 1,
        (last.0 / warm_tprog - 1.0) * 100.0
    );
    assert!(
        first.0 > warm_tprog * 1.02,
        "the first post-boot pass must pay the cold-OPM tax \
         ({:.1} vs warm {warm_tprog:.1} µs)",
        first.0
    );
    assert!(
        last.0 < first.0,
        "re-monitoring on first touch must warm later passes back up \
         ({:.1} -> {:.1} µs)",
        first.0,
        last.0
    );
    assert!(
        first.1 >= last.1,
        "cold-ORT retry searches must not increase after warm-up \
         ({:.3} -> {:.3})",
        first.1,
        last.1
    );
    println!(
        "(the cold boot pays full-verify programs until each h-layer's leader is re-monitored)"
    );
    reg.gauge("spo.warmup.warm_tprog_us", warm_tprog);
    reg.gauge("spo.warmup.cold_pass0_tprog_us", first.0);
    reg.gauge("spo.warmup.last_pass_tprog_us", last.0);
    reg.gauge("spo.warmup.cold_pass0_retries", first.1);
}

/// Overwrites LPNs `0..n` once, round-robin across chips; returns the
/// mean per-WL program latency over the writes that ran no GC (GC
/// frequency depends on pass number, not on monitored state, and would
/// otherwise swamp the parameter warm-up the curve isolates).
fn write_pass(ftl: &mut cubeftl::Ftl, n: u64, ctx: &HostContext, chips: usize) -> f64 {
    let mut total = 0.0;
    let mut wls = 0u64;
    for (i, chunk) in (0..n).collect::<Vec<_>>().chunks(3).enumerate() {
        let mut lpns = [u64::MAX; 3];
        lpns[..chunk.len()].copy_from_slice(chunk);
        let w = ftl.write_wl(i % chips, lpns, ctx);
        if !w.did_gc {
            total += w.nand_us;
            wls += 1;
        }
    }
    total / wls.max(1) as f64
}

fn read_pass_mean_retries(ftl: &mut cubeftl::Ftl, n: u64, ctx: &HostContext) -> f64 {
    let mut retries = 0u64;
    let mut reads = 0u64;
    for lpn in 0..n {
        if let Some(r) = ftl.read_page(lpn, ctx) {
            retries += u64::from(r.retries);
            reads += 1;
        }
    }
    retries as f64 / reads.max(1) as f64
}
