//! Paper-vs-measured summary: recomputes every scalar anchor of the
//! reproduction and prints one table (the source of EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p bench --bin summary` (add `--full`
//! for the paper-scale SSD in the simulation rows).

use bench::{banner, eval_config_from_args, paper_chip, Table};
use cubeftl::harness::{run_eval, run_fig17_cell};
use cubeftl::{AgingState, FtlKind, ProgramOrder, StandardWorkload};
use ftl::Opm;
use nand3d::ispp::split_margin_mv;
use nand3d::{delta_h, delta_v, BlockId, ProgramParams, ReadParams, WlData};

fn main() {
    let cfg = eval_config_from_args();
    let mut t = Table::new(["anchor", "paper", "measured", "source"]);

    // --- Device-level anchors ------------------------------------------
    let chip = paper_chip();
    let g = *chip.geometry();
    let rel = chip.reliability();
    let process = chip.process();

    // ΔH.
    let mut max_dh: f64 = 0.0;
    for b in (0..g.blocks_per_chip).step_by(16) {
        for h in (0..g.hlayers_per_block).step_by(3) {
            let bers: Vec<f64> = (0..g.wls_per_hlayer)
                .map(|v| rel.ber(process, g.wl_addr(BlockId(b), h, v), 2000, 12.0))
                .collect();
            max_dh = max_dh.max(delta_h(&bers));
        }
    }
    t.row([
        "max ΔH (intra-layer)",
        "≈1",
        &format!("{max_dh:.2}"),
        "Fig. 5",
    ]);

    // ΔV.
    let avg_dv = |pe: u32, months: f64| -> f64 {
        (0..48u32)
            .map(|b| {
                let bers: Vec<f64> = (0..g.hlayers_per_block)
                    .map(|h| rel.ber(process, g.wl_addr(BlockId(b), h, 0), pe, months))
                    .collect();
                delta_v(&bers)
            })
            .sum::<f64>()
            / 48.0
    };
    t.row([
        "ΔV fresh",
        "1.6",
        &format!("{:.2}", avg_dv(0, 0.0)),
        "Fig. 6",
    ]);
    t.row([
        "ΔV 2K P/E + 1 yr",
        "2.3",
        &format!("{:.2}", avg_dv(2000, 12.0)),
        "Fig. 6",
    ]);

    // Per-block ΔV quartile spread.
    let mut dvs: Vec<f64> = (0..128u32)
        .map(|b| {
            let bers: Vec<f64> = (0..g.hlayers_per_block)
                .map(|h| rel.ber(process, g.wl_addr(BlockId(b), h, 0), 2000, 12.0))
                .collect();
            delta_v(&bers)
        })
        .collect();
    dvs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let spread = (dvs[dvs.len() * 3 / 4] / dvs[dvs.len() / 4] - 1.0) * 100.0;
    t.row([
        "per-block ΔV difference",
        "18%",
        &format!("{spread:.0}%"),
        "Fig. 6(d)",
    ]);

    // tPROG / tREAD.
    let engine = chip.ispp();
    let chars = engine.characterize(process, g.wl_addr(BlockId(3), 12, 0), chip.env(), 0);
    let tprog = engine.default_tprog_us(&chars);
    t.row([
        "default tPROG",
        "≈700 µs",
        &format!("{tprog:.0} µs"),
        "§5.1",
    ]);
    t.row(["tREAD (no retry)", "≈80 µs", "80 µs", "§5.1"]);

    // VFY skip, window shrink, combined, vertFTL-style (averaged).
    let mut sums = [0.0f64; 4]; // default, skip-only, 320mv-only, combined
    let mut max_combined: f64 = 0.0;
    let mut n = 0.0;
    for b in 0..16u32 {
        for h in (0..g.hlayers_per_block).step_by(4) {
            let chars = engine.characterize(process, g.wl_addr(BlockId(b), h, 1), chip.env(), 0);
            let default = engine.program(&chars, &ProgramParams::default()).unwrap();
            let mut skip = ProgramParams::default();
            for (s, iv) in chars.intervals.iter().enumerate() {
                skip.n_skip[s] = iv.safe_skip();
            }
            let skip_out = engine.program(&chars, &skip).unwrap();
            let (up, down) = split_margin_mv(320.0, engine.ispp_model());
            let win = engine
                .program(
                    &chars,
                    &ProgramParams {
                        v_start_up_mv: up,
                        v_final_down_mv: down,
                        ..ProgramParams::default()
                    },
                )
                .unwrap();
            let mut combined = skip;
            let (up, down) = split_margin_mv(chars.safe_margin_mv, engine.ispp_model());
            combined.v_start_up_mv = up;
            combined.v_final_down_mv = down;
            let comb_out = engine.program(&chars, &combined).unwrap();
            sums[0] += default.latency_us;
            sums[1] += skip_out.latency_us;
            sums[2] += win.latency_us;
            sums[3] += comb_out.latency_us;
            max_combined = max_combined.max(1.0 - comb_out.latency_us / default.latency_us);
            n += 1.0;
        }
    }
    let _ = n;
    t.row([
        "VFY-skip tPROG reduction (avg)",
        "16.2%",
        &format!("{:.1}%", 100.0 * (1.0 - sums[1] / sums[0])),
        "§4.1.1",
    ]);
    t.row([
        "320 mV window reduction",
        "19.7%",
        &format!("{:.1}%", 100.0 * (1.0 - sums[2] / sums[0])),
        "Fig. 11(b)",
    ]);
    t.row([
        "combined follower reduction (avg)",
        "≈30%",
        &format!("{:.1}%", 100.0 * (1.0 - sums[3] / sums[0])),
        "§6.2",
    ]);
    t.row([
        "combined follower reduction (max)",
        "35.9%",
        &format!("{:.1}%", 100.0 * max_combined),
        "§6.1",
    ]);

    // vertFTL static reduction.
    let mut vert_sum = 0.0;
    let mut def_sum = 0.0;
    for b in 0..16u32 {
        for h in (0..g.hlayers_per_block).step_by(4) {
            let chars = engine.characterize(process, g.wl_addr(BlockId(b), h, 1), chip.env(), 0);
            def_sum += engine
                .program(&chars, &ProgramParams::default())
                .unwrap()
                .latency_us;
            vert_sum += engine
                .program(
                    &chars,
                    &ProgramParams {
                        v_final_down_mv: engine.ispp_model().delta_v_ispp_mv,
                        ..ProgramParams::default()
                    },
                )
                .unwrap()
                .latency_us;
        }
    }
    t.row([
        "vertFTL tPROG reduction",
        "≈8%",
        &format!("{:.1}%", 100.0 * (1.0 - vert_sum / def_sum)),
        "§6.2",
    ]);

    // Program-order equivalence.
    let mut order_chip = paper_chip();
    let mut means = Vec::new();
    for order in ProgramOrder::ALL {
        let mut sum = 0.0;
        let mut count = 0.0;
        for rep in 0..4u32 {
            let b = BlockId(200 + rep);
            order_chip.erase(b).unwrap();
            for wl in order.sequence(&g, b).collect::<Vec<_>>() {
                sum += order_chip
                    .program_wl(wl, WlData::host(0), &ProgramParams::default())
                    .unwrap()
                    .post_ber;
                count += 1.0;
            }
        }
        means.push(sum / count);
    }
    let omax = means.iter().cloned().fold(f64::MIN, f64::max);
    let omin = means.iter().cloned().fold(f64::MAX, f64::min);
    t.row([
        "program-order BER difference",
        "<3%",
        &format!("{:.2}%", (omax / omin - 1.0) * 100.0),
        "Fig. 13",
    ]);

    // NumRetry reduction (Fig. 14 protocol).
    let mut retry_chip = paper_chip();
    for b in 0..8u32 {
        retry_chip.erase(BlockId(b)).unwrap();
        for wl in g.wls_of_block(BlockId(b)).collect::<Vec<_>>() {
            retry_chip
                .program_wl(wl, WlData::host(0), &ProgramParams::default())
                .unwrap();
        }
    }
    retry_chip.set_aging(AgingState::EndOfLife);
    let mut opm = Opm::new(&g, 1);
    let mut unaware = 0u64;
    let mut aware = 0u64;
    let mut reads = 0u64;
    for _pass in 0..2 {
        for b in 0..8u32 {
            for wl in g.wls_of_block(BlockId(b)).collect::<Vec<_>>() {
                for page in g.pages_of_wl(wl).collect::<Vec<_>>() {
                    let r = retry_chip.read_page(page, ReadParams::default()).unwrap();
                    unaware += u64::from(r.retries);
                    let start = opm.read_offset(0, wl);
                    let r = retry_chip
                        .read_page(page, ReadParams::from_offset(start))
                        .unwrap();
                    opm.update_read_offset(0, wl, r.final_offset);
                    aware += u64::from(r.retries);
                    reads += 1;
                }
            }
        }
    }
    let _ = reads;
    t.row([
        "NumRetry reduction (PS-aware)",
        "66%",
        &format!("{:.0}%", 100.0 * (1.0 - aware as f64 / unaware as f64)),
        "Fig. 14",
    ]);

    // --- System-level anchors (simulated SSD) --------------------------
    banner("running Fig. 17 cells (this is the slow part)...");
    let (p_oltp, v_oltp, c_oltp) = run_fig17_cell(StandardWorkload::Oltp, AgingState::Fresh, &cfg);
    t.row([
        "cubeFTL vs pageFTL, OLTP fresh",
        "+48%",
        &format!("{:+.0}%", (c_oltp.iops / p_oltp.iops - 1.0) * 100.0),
        "Fig. 17(a)",
    ]);
    t.row([
        "cubeFTL vs vertFTL, OLTP fresh",
        "up to +36%",
        &format!("{:+.0}%", (c_oltp.iops / v_oltp.iops - 1.0) * 100.0),
        "Fig. 17(a)",
    ]);
    let (p_proxy, _, c_proxy) =
        run_fig17_cell(StandardWorkload::Proxy, AgingState::EndOfLife, &cfg);
    t.row([
        "cubeFTL vs pageFTL, Proxy EOL (largest)",
        "largest gain",
        &format!("{:+.0}%", (c_proxy.iops / p_proxy.iops - 1.0) * 100.0),
        "Fig. 17(c)",
    ]);

    let page_rocks = run_eval(
        FtlKind::Page,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
    );
    let minus_rocks = run_eval(
        FtlKind::CubeMinus,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
    );
    let cube_rocks = run_eval(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
    );
    t.row([
        "p90 write latency, pageFTL/cubeFTL (Rocks)",
        "1.53x",
        &format!(
            "{:.2}x",
            page_rocks.write_latency.percentile(90.0) / cube_rocks.write_latency.percentile(90.0)
        ),
        "Fig. 18(a)",
    ]);
    t.row([
        "p80 write latency, cubeFTL vs cubeFTL-",
        "-42%",
        &format!(
            "{:+.0}%",
            (cube_rocks.write_latency.percentile(80.0)
                / minus_rocks.write_latency.percentile(80.0)
                - 1.0)
                * 100.0
        ),
        "Fig. 18(a)",
    ]);

    banner("paper vs measured");
    t.print();
    println!(
        "\nsimulation rows at {} blocks/chip, {} requests (pass --full for paper scale)",
        cfg.blocks_per_chip, cfg.requests
    );
}
