//! Figure 18 — I/O latency distributions under the Rocks workload
//! (fresh state): pageFTL, vertFTL, cubeFTL- (WAM disabled) and cubeFTL.
//!
//! (a) Write-latency CDF — cubeFTL flushes the write buffer faster with
//! follower WLs, shortening the backpressure tail (paper: 90th-percentile
//! write latency 0.72 ms vs pageFTL's 1.10 ms, ≈1.53×).
//! (b) Read-latency CDF — even with no read retries at the fresh state,
//! reads queue behind fewer/shorter programs under cubeFTL.

use bench::{banner, eval_config_from_args, Table};
use cubeftl::harness::run_eval;
use cubeftl::{AgingState, FtlKind, StandardWorkload};

fn main() {
    let cfg = eval_config_from_args();
    println!(
        "scale: {} blocks/chip, {} requests per FTL",
        cfg.blocks_per_chip, cfg.requests
    );

    let kinds = FtlKind::ALL; // page, vert, cube-, cube
    let mut reports: Vec<_> = kinds
        .iter()
        .map(|&k| run_eval(k, StandardWorkload::Rocks, AgingState::Fresh, &cfg))
        .collect();

    for (which, title) in [
        (
            true,
            "Fig. 18(a) — write latency percentiles, Rocks, fresh (ms)",
        ),
        (
            false,
            "Fig. 18(b) — read latency percentiles, Rocks, fresh (ms)",
        ),
    ] {
        banner(title);
        let mut headers = vec!["percentile".to_owned()];
        headers.extend(kinds.iter().map(|k| k.name().to_owned()));
        let mut t = Table::new(headers);
        for p in [50.0, 70.0, 80.0, 90.0, 95.0, 99.0] {
            let mut row = vec![format!("p{p:.0}")];
            for r in reports.iter_mut() {
                let lat = if which {
                    r.write_latency.percentile(p)
                } else {
                    r.read_latency.percentile(p)
                };
                row.push(format!("{:.3}", lat / 1000.0));
            }
            t.row(row);
        }
        t.print();
        println!();
    }

    let p90 = |r: &mut cubeftl::SimReport| r.write_latency.percentile(90.0);
    let page90 = p90(&mut reports[0]);
    let cube90 = p90(&mut reports[3]);
    println!(
        "90th-percentile write latency: pageFTL/cubeFTL = {:.2}x (paper: ≈1.53x)",
        page90 / cube90
    );
    let p80 = |r: &mut cubeftl::SimReport| r.write_latency.percentile(80.0);
    let minus80 = p80(&mut reports[2]);
    let cube80 = p80(&mut reports[3]);
    println!(
        "80th-percentile write latency: cubeFTL is {:.0}% shorter than cubeFTL- (paper: ≈42%)",
        (1.0 - cube80 / minus80) * 100.0
    );
}
