//! Figure 10 — BER changes over `V_Start` / `V_Final` adjustment margins
//! for different h-layers.
//!
//! Sweeps the window adjustment on exemplar h-layers and reports the
//! resulting post-program BER (normalized to the unadjusted program).
//! Good layers tolerate large margins; the worst layers under aged
//! conditions run out of spare margin quickly.

use bench::{banner, exemplar_layers, f2, paper_chip, Table};
use nand3d::{BlockId, ProgramParams};

fn main() {
    let chip = paper_chip();
    let g = *chip.geometry();
    let engine = chip.ispp();
    let ispp = engine.ispp_model();
    let block = BlockId(17);

    for (title, pe, months, sweep_start) in [
        (
            "Fig. 10(a) — BER over V_Start adjustment margins (2K P/E + 1 yr)",
            2000u32,
            12.0,
            true,
        ),
        (
            "Fig. 10(b) — BER over V_Final adjustment margins (2K P/E + 1 yr)",
            2000,
            12.0,
            false,
        ),
    ] {
        banner(title);
        let mut env = chip.env().clone();
        env.set_aging_raw(pe, months);
        let mut headers = vec!["margin (mV)".to_owned()];
        headers.extend(exemplar_layers(&chip).iter().map(|(l, _)| (*l).to_owned()));
        let mut t = Table::new(headers);
        let steps = (ispp.max_adjust_mv / ispp.delta_v_ispp_mv) as u32;
        for step in 0..=steps {
            let mv = f64::from(step) * ispp.delta_v_ispp_mv;
            let mut row = vec![format!("{mv:.0}")];
            for (_, h) in exemplar_layers(&chip) {
                let chars = engine.characterize(chip.process(), g.wl_addr(block, h, 1), &env, 0);
                let params = if sweep_start {
                    ProgramParams {
                        v_start_up_mv: mv,
                        ..ProgramParams::default()
                    }
                } else {
                    ProgramParams {
                        v_final_down_mv: mv,
                        ..ProgramParams::default()
                    }
                };
                let out = engine.program(&chars, &params).expect("legal sweep");
                row.push(f2(out.post_ber / chars.base_ber));
            }
            t.row(row);
        }
        t.print();
        println!();
    }

    banner("Safe total margins per exemplar layer (mV)");
    let mut t = Table::new(["h-layer", "fresh", "2K+1mo", "2K+1yr"]);
    for (label, h) in exemplar_layers(&chip) {
        let mut row = vec![label.to_owned()];
        for (pe, months) in [(0u32, 0.0f64), (2000, 1.0), (2000, 12.0)] {
            let mut env = chip.env().clone();
            env.set_aging_raw(pe, months);
            let chars = engine.characterize(chip.process(), g.wl_addr(block, h, 1), &env, 0);
            row.push(format!("{:.0}", chars.safe_margin_mv));
        }
        t.row(row);
    }
    t.print();
    println!("\n(paper [13]: h-layer_beta can statically spend only 130 mV over its lifetime;");
    println!(" run-time monitoring lets cubeFTL spend the full current margin instead)");
}
