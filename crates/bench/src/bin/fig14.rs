//! Figure 14 — effect of the PS-aware read on `NumRetry`.
//!
//! Writes a population of pages, ages the chip to 2K P/E + 1-year
//! retention, and reads everything back twice per scheme:
//!
//! * **PS-unaware**: every read starts from the default read references
//!   and walks to the per-h-layer optimum.
//! * **PS-aware**: reads start from the ORT entry of the page's h-layer;
//!   after the first read of an h-layer, subsequent reads start at the
//!   optimum (up to rare environment-induced mispredictions).
//!
//! The paper reports a 66% average `NumRetry` reduction.

use bench::{banner, paper_chip, Table};
use ftl::Opm;
use nand3d::{AgingState, BlockId, ProgramParams, ReadParams, WlData};

fn main() {
    let mut chip = paper_chip();
    let g = *chip.geometry();

    // Program a population of pages across blocks and layers.
    let blocks: Vec<BlockId> = (0..24u32)
        .map(|b| BlockId(b * 16 % g.blocks_per_chip))
        .collect();
    for &b in &blocks {
        chip.erase(b).expect("in range");
        for wl in g.wls_of_block(b).collect::<Vec<_>>() {
            chip.program_wl(wl, WlData::host(0), &ProgramParams::default())
                .expect("erased");
        }
    }

    chip.set_aging(AgingState::EndOfLife);
    chip.env_mut().set_disturbance_prob(0.01);

    let passes = 2;
    let mut unaware_hist = [0u64; 8];
    let mut aware_hist = [0u64; 8];
    let mut unaware_total = 0u64;
    let mut aware_total = 0u64;
    let mut reads = 0u64;

    let mut opm = Opm::new(&g, 1);
    for _pass in 0..passes {
        for &b in &blocks {
            for wl in g.wls_of_block(b).collect::<Vec<_>>() {
                for page in g.pages_of_wl(wl).collect::<Vec<_>>() {
                    // PS-unaware read: default references.
                    let r = chip
                        .read_page(page, ReadParams::default())
                        .expect("written");
                    unaware_hist[(r.retries as usize).min(7)] += 1;
                    unaware_total += u64::from(r.retries);

                    // PS-aware read: start from the ORT.
                    let start = opm.read_offset(0, wl);
                    let r = chip
                        .read_page(page, ReadParams::from_offset(start))
                        .expect("written");
                    opm.update_read_offset(0, wl, r.final_offset);
                    aware_hist[(r.retries as usize).min(7)] += 1;
                    aware_total += u64::from(r.retries);
                    reads += 1;
                }
            }
        }
    }

    banner("Fig. 14 — NumRetry distribution at 2K P/E + 1-year retention");
    let mut t = Table::new(["NumRetry", "PS-unaware (%)", "PS-aware (%)"]);
    for n in 0..8usize {
        let label = if n == 7 {
            "7+".to_owned()
        } else {
            n.to_string()
        };
        t.row([
            label,
            format!("{:.1}", 100.0 * unaware_hist[n] as f64 / reads as f64),
            format!("{:.1}", 100.0 * aware_hist[n] as f64 / reads as f64),
        ]);
    }
    t.print();

    let unaware_avg = unaware_total as f64 / reads as f64;
    let aware_avg = aware_total as f64 / reads as f64;
    println!("\naverage NumRetry: PS-unaware {unaware_avg:.2}, PS-aware {aware_avg:.2}");
    println!(
        "reduction: {:.0}% (paper: 66% on average)",
        100.0 * (1.0 - aware_avg / unaware_avg)
    );
}
