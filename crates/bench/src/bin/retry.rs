//! Read-retry pipeline v2: the NumRetry-vs-age curve, cluster off vs on.
//!
//! Runs the read-heavy Rocks workload at each aging state under an
//! SRAM-constrained ORT (LRU-evicted, so cold lookups keep occurring at
//! steady state — the configuration the cross-block cluster targets),
//! once with the baseline pipeline and once with the v2 pipeline
//! (`--ort-cluster on --retry-opt on`). NumRetry is measured from the
//! telemetry event trace, not the aggregate counters, so the curve can
//! split seeded from unseeded chains.
//!
//! Asserts the tentpole bar — at the aged EndOfLife state the v2
//! pipeline must cut NumRetry by at least 66% — and that the retry
//! trace is byte-identical across a double run (the pipeline adds no
//! nondeterminism).
//!
//! `--out PATH` writes the curve as CSV for plotting; `--smoke` runs the
//! CI-scale configuration.
//!
//! Run with: `cargo run --release -p bench --bin retry`

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{run_eval_traced, TelemetrySpec};
use cubeftl::{
    events_to_ndjson, AgingState, EventKind, EventMask, FtlKind, MetricRegistry, OrtClusterConfig,
    RetryOptConfig, StandardWorkload, TraceEvent,
};
use std::time::Instant;

/// The reduction bar of the tentpole: v2 must cut NumRetry by at least
/// this fraction at the aged EndOfLife state.
const REDUCTION_BAR: f64 = 0.66;

/// Per-chip ORT capacity modelling scarce controller SRAM, scaled with
/// the device (one entry per block ≈ 1/48 of the full table): small
/// enough that LRU eviction keeps producing cold lookups at steady
/// state at every benchmark scale.
fn sram_ort_capacity(blocks_per_chip: u32) -> usize {
    (blocks_per_chip as usize / 4).max(4)
}

/// What one traced run contributed to the curve.
struct CurvePoint {
    aging: &'static str,
    pipeline: &'static str,
    reads: u64,
    retry_events: u64,
    num_retry: u64,
    seeded_events: u64,
    early_terms: u64,
    trace: String,
}

fn sum_trace(events: &[TraceEvent]) -> (u64, u64, u64, u64) {
    let (mut evs, mut num, mut seeded, mut early) = (0u64, 0u64, 0u64, 0u64);
    for e in events {
        if let EventKind::ReadRetry {
            retries,
            seeded: s,
            early_term,
            ..
        } = e.kind
        {
            evs += 1;
            num += u64::from(retries);
            seeded += u64::from(s);
            early += u64::from(early_term);
        }
    }
    (evs, num, seeded, early)
}

fn main() {
    let wall = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let mut cfg = eval_config_from_args();
    // Enough read traffic for the cluster to warm past its per-h-layer
    // sample threshold even at smoke scale, bounded for CI runtimes.
    cfg.requests = cfg.requests.clamp(15_000, 30_000);
    cfg.ort_capacity = sram_ort_capacity(cfg.blocks_per_chip);
    let tel = TelemetrySpec {
        events: EventMask::READ_RETRY,
        sample_interval_us: None,
    };

    banner("read-retry pipeline v2 — NumRetry vs age (Rocks, SRAM-bounded ORT)");
    let mut points: Vec<CurvePoint> = Vec::new();
    for (aging_label, aging) in [
        ("fresh", AgingState::Fresh),
        ("midlife", AgingState::MidLife),
        ("eol", AgingState::EndOfLife),
    ] {
        for (pipeline, cluster, opt) in [
            (
                "baseline",
                OrtClusterConfig::default(),
                RetryOptConfig::default(),
            ),
            ("v2", OrtClusterConfig::on(), RetryOptConfig::on()),
        ] {
            cfg.ort_cluster = cluster;
            cfg.retry_opt = opt;
            let (report, telemetry) =
                run_eval_traced(FtlKind::Cube, StandardWorkload::Rocks, aging, &cfg, &tel);
            let (retry_events, num_retry, seeded_events, early_terms) =
                sum_trace(&telemetry.events);
            assert_eq!(
                num_retry, report.ftl.read_retries,
                "trace NumRetry must agree with the aggregate counter"
            );
            if std::env::var("RETRY_DEBUG").is_ok() {
                eprintln!(
                    "DBG {aging_label}/{pipeline}: reads={} hits={} misses={} evict={} seeds={} chits={} mis={} fallbacks={}",
                    report.ftl.nand_reads,
                    report.ftl.ort_hits,
                    report.ftl.ort_misses,
                    report.ftl.ort_evictions,
                    report.ftl.cluster_seeds,
                    report.ftl.cluster_hits,
                    report.ftl.cluster_mispredicts,
                    report.ftl.ort_fallbacks,
                );
            }
            points.push(CurvePoint {
                aging: aging_label,
                pipeline,
                reads: report.ftl.nand_reads,
                retry_events,
                num_retry,
                seeded_events,
                early_terms,
                trace: events_to_ndjson(&telemetry.events),
            });
        }
    }

    let mut t = Table::new([
        "aging",
        "pipeline",
        "NumRetry",
        "retries/read",
        "retry events",
        "seeded",
        "early term",
        "reduction",
    ]);
    for pair in points.chunks(2) {
        let (base, v2) = (&pair[0], &pair[1]);
        for p in pair {
            let reduction = if p.pipeline == "v2" && base.num_retry > 0 {
                format!(
                    "{:.1}%",
                    (1.0 - v2.num_retry as f64 / base.num_retry as f64) * 100.0
                )
            } else {
                String::new()
            };
            t.row([
                p.aging.to_owned(),
                p.pipeline.to_owned(),
                format!("{}", p.num_retry),
                format!("{:.3}", p.num_retry as f64 / p.reads.max(1) as f64),
                format!("{}", p.retry_events),
                format!("{}", p.seeded_events),
                format!("{}", p.early_terms),
                reduction,
            ]);
        }
    }
    t.print();

    if let Some(path) = &out_path {
        let mut csv = String::from(
            "aging,pipeline,reads,retry_events,num_retry,seeded_events,early_terminations\n",
        );
        for p in &points {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.aging,
                p.pipeline,
                p.reads,
                p.retry_events,
                p.num_retry,
                p.seeded_events,
                p.early_terms
            ));
        }
        std::fs::write(path, csv).expect("write curve CSV");
        println!("\ncurve written to {path}");
    }

    // Fresh state: the cluster has nothing to seed (offset 0 everywhere)
    // and must not disturb the run.
    let fresh: Vec<&CurvePoint> = points.iter().filter(|p| p.aging == "fresh").collect();
    assert_eq!(
        fresh[0].num_retry, fresh[1].num_retry,
        "fresh state has no retries to remove"
    );

    // The tentpole bar: ≥66% NumRetry reduction at the aged state.
    let eol: Vec<&CurvePoint> = points.iter().filter(|p| p.aging == "eol").collect();
    let (base, v2) = (eol[0], eol[1]);
    let reduction = 1.0 - v2.num_retry as f64 / base.num_retry.max(1) as f64;
    assert!(
        reduction >= REDUCTION_BAR,
        "v2 must cut NumRetry by >= {:.0}% at EndOfLife, got {:.1}% ({} -> {})",
        REDUCTION_BAR * 100.0,
        reduction * 100.0,
        base.num_retry,
        v2.num_retry
    );

    // Determinism: a double run of the v2 EndOfLife cell reproduces the
    // retry trace byte for byte.
    let (_, again) = run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::EndOfLife,
        &cfg,
        &tel,
    );
    assert_eq!(
        v2.trace,
        events_to_ndjson(&again.events),
        "double run must reproduce the retry trace byte-identically"
    );

    // Machine-readable export: the full curve plus the headline
    // reduction and wall clock (the perf-trajectory artifact).
    let mut reg = MetricRegistry::new();
    for p in &points {
        let prefix = format!("retry.{}.{}", p.aging, p.pipeline);
        reg.counter(&format!("{prefix}.reads"), p.reads);
        reg.counter(&format!("{prefix}.retry_events"), p.retry_events);
        reg.counter(&format!("{prefix}.num_retry"), p.num_retry);
        reg.counter(&format!("{prefix}.seeded_events"), p.seeded_events);
        reg.counter(&format!("{prefix}.early_terminations"), p.early_terms);
    }
    reg.gauge("bench.eol_num_retry_reduction", reduction);
    reg.gauge("bench.wall_ms", wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("retry", &mut reg);

    println!(
        "\n(v2 cut NumRetry {} -> {} at EndOfLife, a {:.1}% reduction — cross-block",
        base.num_retry,
        v2.num_retry,
        reduction * 100.0
    );
    println!(" cluster seeding turns evicted/cold ORT lookups from full retry walks into");
    println!(" one-step refinements, and the retry-chain optimizations shorten what's left;");
    println!(" the double-run trace check held, so the pipeline stays deterministic)");
}
