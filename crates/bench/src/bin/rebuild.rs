//! Array-resilience cost: degraded-read latency inflation and rebuild
//! time vs the idle-window budget.
//!
//! A 3-shard parity array loses shard 1 mid-run; the survivors serve
//! degraded reads by two-fragment reconstruction while the background
//! rebuild repopulates a blank spare, paced by the idle-window
//! scheduler (`batch` pages per unit, a host-priority `gap` between
//! units). Two costs are measured:
//!
//! 1. **Degraded-read inflation** — read latency of the degraded phase
//!    (reconstruction fan-out on the survivors plus rebuild traffic in
//!    the background) against the healthy full-run baseline.
//! 2. **Rebuild time vs idle-window budget** — the virtual time the
//!    rebuild needs to drain across pacing settings: a wider gap yields
//!    more bandwidth to the host and stretches the window of exposure.
//!
//! Every cell re-asserts the zero-host-acknowledged-loss audit. The
//! default cell's rebuild curve (virtual time, ops done) is written to
//! `rebuild_curve.csv` next to `BENCH_rebuild.json`.
//!
//! Run with: `cargo run --release -p bench --bin rebuild` (`--smoke`
//! for the CI-sized variant).

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{
    run_array_eval, run_array_failure_eval, ArrayEvalConfig, ArrayFailureConfig, FailSpec,
};
use cubeftl::{AgingState, FtlKind, MetricRegistry, StandardWorkload};
use std::time::Instant;

fn main() {
    let bench_wall = Instant::now();
    let mut reg = MetricRegistry::new();
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(4_000);
    let workload = StandardWorkload::Oltp;
    let aging = AgingState::MidLife;
    let mut arr = ArrayEvalConfig::new(3);
    arr.stripe_pages = 16;

    // The healthy baseline fixes both the latency yardstick and the
    // failure instant: the shard dies ~40% into the shortest shard's
    // healthy makespan, so the degraded phase always has work left.
    let healthy = run_array_eval(FtlKind::Cube, workload, aging, &cfg, &arr);
    let healthy_p50 = healthy.merged.read_latency.percentile(50.0);
    let healthy_p99 = healthy.merged.read_latency.percentile(99.0);
    let makespan = healthy
        .shards
        .iter()
        .map(|s| s.sim_time_us)
        .fold(f64::INFINITY, f64::min);
    let fail = FailSpec {
        shard: 1,
        at_us: (makespan * 0.4).max(1.0),
    };

    banner("array rebuild — degraded latency and rebuild time vs idle-window budget");
    println!(
        "3 shards + 1 spare, stripe 16, shard 1 dies at {:.1} ms; healthy read \
         p50 {:.3} / p99 {:.3} ms\n",
        fail.at_us / 1000.0,
        healthy_p50 / 1000.0,
        healthy_p99 / 1000.0,
    );
    let mut t = Table::new([
        "batch/gap µs",
        "rebuild ms",
        "pages",
        "degr p50 (ms)",
        "degr p99 (ms)",
        "p99 vs healthy",
        "lost",
    ]);
    let mut default_cell = None;
    let mut gap_times = Vec::new();
    for (batch, gap_us) in [(8u32, 50.0f64), (8, 200.0), (8, 800.0), (32, 200.0)] {
        let mut fc = ArrayFailureConfig::off();
        fc.parity = true;
        fc.fail = Some(fail);
        fc.spare_shards = 1;
        fc.rebuild.batch_pages = batch;
        fc.rebuild.gap_us = gap_us;
        let r = run_array_failure_eval(FtlKind::Cube, workload, aging, &cfg, &arr, &fc);
        assert!(
            r.audit.zero_loss,
            "batch {batch} gap {gap_us}: rebuild must reach zero loss ({:?})",
            r.audit
        );
        assert_eq!(r.audit.rebuilt_mapped_pages, r.audit.acked_pages);
        assert!(r.resilience.degraded_reads > 0, "degraded reads exercised");
        let d = r.degraded.as_ref().expect("degraded phase ran");
        let (p50, p99) = (
            d.read_latency.percentile(50.0),
            d.read_latency.percentile(99.0),
        );
        t.row([
            format!("{batch}/{gap_us:.0}"),
            format!("{:.1}", r.resilience.rebuild_time_us / 1000.0),
            format!("{}", r.resilience.rebuild_pages),
            format!("{:.3}", p50 / 1000.0),
            format!("{:.3}", p99 / 1000.0),
            format!("{:+.1}%", (p99 / healthy_p99 - 1.0) * 100.0),
            format!("{}", r.audit.lost_pages),
        ]);
        let prefix = format!("rebuild.batch{batch}.gap{gap_us:.0}");
        reg.gauge(&format!("{prefix}.time_us"), r.resilience.rebuild_time_us);
        reg.counter(&format!("{prefix}.pages"), r.resilience.rebuild_pages);
        reg.gauge(&format!("{prefix}.degraded_read_p99_us"), p99);
        reg.counter(
            &format!("{prefix}.degraded_reads"),
            r.resilience.degraded_reads,
        );
        if batch == 8 {
            gap_times.push((gap_us, r.resilience.rebuild_time_us));
        }
        if batch == 8 && gap_us == 200.0 {
            default_cell = Some(r);
        }
    }
    t.print();

    // A wider host-priority gap must stretch the rebuild: the pacing
    // budget, not raw NAND bandwidth, bounds the drain.
    let (tightest, widest) = (gap_times[0], gap_times[gap_times.len() - 1]);
    assert!(
        widest.1 > tightest.1,
        "gap {} µs must rebuild slower than gap {} µs ({:.0} vs {:.0} µs)",
        widest.0,
        tightest.0,
        widest.1,
        tightest.1
    );
    println!(
        "\n(the idle-window budget bounds the drain: gap {:.0} -> {:.0} µs stretches \
         the rebuild {:.1}x;\n\x20every cell rebuilt every array-acked page onto the \
         spare with zero host-acknowledged loss)",
        tightest.0,
        widest.0,
        widest.1 / tightest.1,
    );

    // The default cell's rebuild curve — the CI artifact next to the
    // perf export.
    let r = default_cell.expect("default cell ran");
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = std::path::Path::new(&dir).join("rebuild_curve.csv");
    let mut csv = String::from("t_us,ops_done\n");
    for (t_us, ops) in &r.rebuild.curve {
        csv.push_str(&format!("{t_us},{ops}\n"));
    }
    std::fs::write(&path, csv).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "\nrebuild curve ({} points) written to {}",
        r.rebuild.curve.len(),
        path.display()
    );

    reg.gauge("rebuild.healthy_read_p50_us", healthy_p50);
    reg.gauge("rebuild.healthy_read_p99_us", healthy_p99);
    reg.gauge("rebuild.fail_at_us", fail.at_us);
    reg.gauge("bench.wall_ms", bench_wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("rebuild", &mut reg);
}
