//! Figure 11 — `V_Start`/`V_Final` adjustment based on `BER_EP1`.
//!
//! (a) `BER_EP1` monitored at program time predicts the retention BER the
//! WL will exhibit (rank correlation across h-layers and aging states).
//! (b) The `S_M` → total-adjustment conversion table, with the paper's
//! anchor: `S_M = 1.7 → 320 mV → tPROG −19.7%`.

use bench::{banner, f2, f3, paper_chip, Table};
use nand3d::ispp::{margin_mv_for_spare, split_margin_mv};
use nand3d::{BlockId, ProgramParams};

fn main() {
    let chip = paper_chip();
    let g = *chip.geometry();
    let engine = chip.ispp();
    let rel = chip.reliability();
    let block = BlockId(17);

    banner("Fig. 11(a) — BER_EP1 vs 1-year retention BER (per h-layer, 2K P/E)");
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let mut t = Table::new(["h-layer", "normalized BER_EP1", "normalized retention BER"]);
    let ep1_ref = rel.ber_ep1(chip.process(), g.wl_addr(block, 12, 0), 0);
    let ret_ref = rel.ber(chip.process(), g.wl_addr(block, 12, 0), 0, 0.0);
    for h in (0..g.hlayers_per_block).step_by(4) {
        let wl = g.wl_addr(block, h, 0);
        let ep1 = rel.ber_ep1(chip.process(), wl, 2000);
        let ret = rel.ber(chip.process(), wl, 2000, 12.0);
        pairs.push((ep1, ret));
        t.row([h.to_string(), f2(ep1 / ep1_ref), f2(ret / ret_ref)]);
    }
    t.print();
    // Kendall-style inversion count.
    let mut sorted = pairs.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut inversions = 0usize;
    let mut total = 0usize;
    for i in 0..sorted.len() {
        for j in (i + 1)..sorted.len() {
            total += 1;
            if sorted[i].1 > sorted[j].1 {
                inversions += 1;
            }
        }
    }
    println!(
        "\nrank agreement: {:.0}% (BER_EP1 is a usable predictor of retention BER)",
        100.0 * (1.0 - inversions as f64 / total as f64)
    );

    banner("Fig. 11(b) — S_M conversion table and the 320 mV anchor");
    let ispp = engine.ispp_model();
    let mut t = Table::new(["S_M", "total margin (mV)", "V_Start (mV)", "V_Final (mV)"]);
    for sm in [0.0, 0.5, 1.0, 1.7, 2.0, 2.5, 3.0] {
        let mv = margin_mv_for_spare(sm, ispp);
        let (up, down) = split_margin_mv(mv, ispp);
        t.row([
            format!("{sm:.1}"),
            format!("{mv:.0}"),
            format!("{up:.0}"),
            format!("{down:.0}"),
        ]);
    }
    t.print();

    // The anchor measurement: a 320 mV total adjustment on a typical WL.
    let env = chip.env();
    let chars = engine.characterize(chip.process(), g.wl_addr(block, 12, 1), env, 0);
    let default = engine
        .program(&chars, &ProgramParams::default())
        .expect("default");
    let (up, down) = split_margin_mv(320.0, ispp);
    let adjusted = engine
        .program(
            &chars,
            &ProgramParams {
                v_start_up_mv: up,
                v_final_down_mv: down,
                ..ProgramParams::default()
            },
        )
        .expect("legal");
    println!(
        "\n320 mV total adjustment: tPROG {} -> {} µs ({} reduction; paper: 19.7%)",
        f2(default.latency_us),
        f2(adjusted.latency_us),
        f3(1.0 - adjusted.latency_us / default.latency_us)
    );
}
