//! Lifetime campaign: the fresh → end-of-life drift curve.
//!
//! Runs one fast-forward aging campaign (PR 9 tentpole) on the Mail
//! workload, twice: once with background maintenance off — the raw
//! drift curve — and once with maintenance on, where retention
//! scrubbing and wear leveling race the same aging schedule. Each
//! epoch's report yields the headline drift metrics: IOPS, mean tPROG
//! (host write-latency mean), NumRetry, retries/read, and write
//! amplification.
//!
//! Asserts the acceptance bars:
//!
//! * retries/read on the maintenance-off curve is monotone
//!   non-decreasing from fresh to end-of-life, and strictly higher at
//!   the end than at the start (the device really ages);
//! * maintenance pays for itself at end-of-life: the maintenance-on
//!   campaign's final-epoch retry rate is below the maintenance-off
//!   one's;
//! * a double run reproduces the curve CSV byte-for-byte;
//! * a 4-shard array campaign is byte-identical at 1 and 4 worker
//!   threads.
//!
//! `--out PATH` overrides the curve path (default `lifetime_curve.csv`,
//! honouring `$BENCH_JSON_DIR`); `--smoke` runs the CI-scale
//! configuration. `--epochs N`, `--pe N`, `--months F`,
//! `--scrub-months F`, `--remonitor-pe N` and `--wl 0|1` override the
//! aging schedule and maintenance tuning for exploration (the
//! assertions assume the defaults).
//!
//! Run with: `cargo run --release -p bench --bin lifetime`

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{run_lifetime_array_eval, run_lifetime_eval, ArrayEvalConfig};
use cubeftl::{AgingState, FtlKind, LifetimeConfig, MaintConfig, MetricRegistry, StandardWorkload};
use std::time::Instant;

/// What one campaign epoch contributed to the curve.
struct CurvePoint {
    maint: &'static str,
    epoch: u32,
    pe_cum: u32,
    months_cum: f64,
    iops: f64,
    tprog_mean_us: f64,
    num_retry: u64,
    retry_per_read: f64,
    wa_host: f64,
    wa_total: f64,
    gc_runs: u64,
    scrub_blocks: u64,
}

/// Runs one single-device campaign and flattens it into curve points.
fn run_campaign(
    label: &'static str,
    cfg: &cubeftl::harness::EvalConfig,
    life: &LifetimeConfig,
) -> Vec<CurvePoint> {
    let r = run_lifetime_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        cfg,
        life,
    );
    let mut pe_cum = 0u32;
    let mut months_cum = 0.0f64;
    let mut points = Vec::with_capacity(r.epochs.len());
    for (e, rep) in r.epochs.iter().enumerate() {
        if e > 0 {
            let s = &r.summaries[e - 1];
            pe_cum += life.pe_per_epoch;
            months_cum += s.retention_added_months;
        }
        points.push(CurvePoint {
            maint: label,
            epoch: e as u32,
            pe_cum,
            months_cum,
            iops: rep.iops,
            tprog_mean_us: rep.write_latency.mean(),
            num_retry: rep.ftl.read_retries,
            retry_per_read: r.retry_rate(e),
            wa_host: rep.wa_host().unwrap_or(0.0),
            wa_total: rep.wa_total().unwrap_or(0.0),
            gc_runs: rep.ftl.gc_runs,
            scrub_blocks: rep.ftl.scrub_blocks,
        });
    }
    points
}

/// The curve as CSV — also the double-run byte-identity witness.
fn curve_csv(points: &[CurvePoint]) -> String {
    let mut csv = String::from(
        "maint,epoch,pe_cum,months_cum,iops,tprog_mean_us,num_retry,retry_per_read,\
         wa_host,wa_total,gc_runs,scrub_blocks\n",
    );
    for p in points {
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.2},{:.3},{},{:.5},{:.5},{:.5},{},{}\n",
            p.maint,
            p.epoch,
            p.pe_cum,
            p.months_cum,
            p.iops,
            p.tprog_mean_us,
            p.num_retry,
            p.retry_per_read,
            p.wa_host,
            p.wa_total,
            p.gc_runs,
            p.scrub_blocks,
        ));
    }
    csv
}

/// Canonical per-epoch, per-shard counter dump of an array campaign —
/// the thread-invariance witness.
fn array_fingerprint(r: &cubeftl::harness::LifetimeArrayEvalReport) -> String {
    let mut s = String::new();
    for (e, rep) in r.epochs.iter().enumerate() {
        s.push_str(&format!(
            "epoch {e}: iops {:.4} completed {} retries {}\n",
            rep.merged.iops, rep.merged.completed, rep.merged.ftl.read_retries
        ));
        for (i, sh) in rep.shards.iter().enumerate() {
            s.push_str(&format!(
                "  shard {i}: completed {} reads {} writes {} retries {} gc {} host_wl {}\n",
                sh.completed,
                sh.reads,
                sh.writes,
                sh.ftl.read_retries,
                sh.ftl.gc_runs,
                sh.ftl.host_wl_programs,
            ));
        }
    }
    for (k, step) in r.summaries.iter().enumerate() {
        for (i, sum) in step.iter().enumerate() {
            s.push_str(&format!(
                "step {k} shard {i}: blocks {} pe {} months {:.4}\n",
                sum.blocks_aged, sum.pe_added, sum.retention_added_months
            ));
        }
    }
    s
}

/// `--flag VALUE` lookup for the schedule-override knobs.
fn flag_val(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn main() {
    let wall = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_owned());
            std::path::Path::new(&dir)
                .join("lifetime_curve.csv")
                .to_string_lossy()
                .into_owned()
        });

    let mut cfg = eval_config_from_args();
    // Five workload phases per campaign; bound each for CI runtimes.
    cfg.requests = cfg.requests.clamp(2_000, 12_000);
    let mut life = LifetimeConfig::campaign();
    // The bench schedule leans on retention over P/E wear: retention
    // loss is what scrubbing can actually cure (a refresh resets it,
    // while P/E wear is permanent), so it is the regime where the
    // maintenance-payoff bar is meaningful — and keeping cumulative
    // P/E low keeps the device out of the wholesale recalibration
    // storms whose rewrites reset retention mid-campaign and break the
    // per-epoch monotonicity the curve asserts.
    life.pe_per_epoch = 100;
    if let Some(v) = flag_val(&args, "--epochs") {
        life.epochs = v as u32;
    }
    if let Some(v) = flag_val(&args, "--pe") {
        life.pe_per_epoch = v as u32;
    }
    if let Some(v) = flag_val(&args, "--months") {
        life.months_per_epoch = v;
    }

    banner("lifetime campaign — fresh -> end-of-life drift (Mail, cubeFTL)");
    println!(
        "campaign: {} epochs x (+{} P/E, +{} months), variation {}, pattern wear {}\n",
        life.epochs,
        life.pe_per_epoch,
        life.months_per_epoch,
        life.variation_strength,
        if life.pattern_wear { "on" } else { "off" },
    );

    cfg.maint = None;
    let no_maint = run_campaign("off", &cfg, &life);
    let mut maint = MaintConfig::default_on();
    // The stock 6-month scrub bar is sized for the paper's static aging
    // states; under this accelerated schedule (~12 retention-months per
    // campaign) the scrubber must engage proactively to race the drift.
    maint.scrub_retention_min_months = 2.0;
    if let Some(v) = flag_val(&args, "--scrub-months") {
        maint.scrub_retention_min_months = v;
    }
    if let Some(v) = flag_val(&args, "--wl") {
        maint.wear_leveling = v != 0.0;
    }
    if let Some(v) = flag_val(&args, "--remonitor-pe") {
        maint.remonitor_pe_budget = v as u32;
    }
    cfg.maint = Some(maint);
    let with_maint = run_campaign("on", &cfg, &life);

    let mut t = Table::new([
        "maint",
        "epoch",
        "+P/E",
        "+months",
        "IOPS",
        "tPROG(us)",
        "NumRetry",
        "retry/read",
        "WA(h)",
        "WA(t)",
    ]);
    for p in no_maint.iter().chain(with_maint.iter()) {
        t.row([
            p.maint.to_owned(),
            p.epoch.to_string(),
            p.pe_cum.to_string(),
            format!("{:.1}", p.months_cum),
            format!("{:.0}", p.iops),
            format!("{:.1}", p.tprog_mean_us),
            p.num_retry.to_string(),
            format!("{:.3}", p.retry_per_read),
            format!("{:.2}", p.wa_host),
            format!("{:.2}", p.wa_total),
        ]);
    }
    t.print();

    let mut csv = curve_csv(&no_maint);
    csv.push_str(
        curve_csv(&with_maint)
            .split_once('\n')
            .map(|x| x.1)
            .unwrap_or(""),
    );
    std::fs::write(&out_path, &csv).expect("write curve CSV");
    println!("\ncurve written to {out_path}");

    // Bar 1: the maintenance-off retry curve is monotone non-decreasing
    // and the device really ages.
    for w in no_maint.windows(2) {
        assert!(
            w[1].retry_per_read >= w[0].retry_per_read,
            "retries/read must not decrease with age without maintenance \
             (epoch {} {:.4} -> epoch {} {:.4})",
            w[0].epoch,
            w[0].retry_per_read,
            w[1].epoch,
            w[1].retry_per_read
        );
    }
    let (fresh, eol) = (no_maint.first().unwrap(), no_maint.last().unwrap());
    assert!(
        eol.retry_per_read > fresh.retry_per_read,
        "end-of-life must retry more than fresh ({:.4} vs {:.4})",
        eol.retry_per_read,
        fresh.retry_per_read
    );
    assert!(
        eol.wa_total >= fresh.wa_total,
        "write amplification must not improve with age ({:.4} -> {:.4})",
        fresh.wa_total,
        eol.wa_total
    );

    // Bar 2: maintenance pays for itself at end-of-life.
    let eol_maint = with_maint.last().unwrap();
    assert!(
        eol_maint.retry_per_read < eol.retry_per_read,
        "maintenance must beat no-maintenance on end-of-life retry rate \
         ({:.4} vs {:.4})",
        eol_maint.retry_per_read,
        eol.retry_per_read
    );

    // Bar 3: a double run reproduces the maintenance-off curve CSV
    // byte-for-byte.
    cfg.maint = None;
    let again = run_campaign("off", &cfg, &life);
    assert_eq!(
        curve_csv(&no_maint),
        curve_csv(&again),
        "double run must reproduce the drift curve byte-identically"
    );

    // Bar 4: a 4-shard array campaign is worker-thread invariant.
    let mut short = life;
    short.epochs = 3;
    let mut arr = ArrayEvalConfig::new(4);
    arr.threads = 1;
    let serial = run_lifetime_array_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &arr,
        &short,
    );
    arr.threads = 4;
    let threaded = run_lifetime_array_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &arr,
        &short,
    );
    assert_eq!(
        array_fingerprint(&serial),
        array_fingerprint(&threaded),
        "array campaign must be byte-identical at 1 and 4 worker threads"
    );

    // Machine-readable export: the full curve plus the headline payoff
    // and wall clock (the perf-trajectory artifact).
    let mut reg = MetricRegistry::new();
    for p in no_maint.iter().chain(with_maint.iter()) {
        let prefix = format!("lifetime.maint_{}.e{}", p.maint, p.epoch);
        reg.gauge(&format!("{prefix}.iops"), p.iops);
        reg.gauge(&format!("{prefix}.tprog_mean_us"), p.tprog_mean_us);
        reg.counter(&format!("{prefix}.num_retry"), p.num_retry);
        reg.gauge(&format!("{prefix}.retry_per_read"), p.retry_per_read);
        reg.gauge(&format!("{prefix}.wa_host"), p.wa_host);
        reg.gauge(&format!("{prefix}.wa_total"), p.wa_total);
        reg.counter(&format!("{prefix}.gc_runs"), p.gc_runs);
        reg.counter(&format!("{prefix}.scrub_blocks"), p.scrub_blocks);
    }
    reg.gauge("bench.eol_retry_per_read_no_maint", eol.retry_per_read);
    reg.gauge("bench.eol_retry_per_read_maint", eol_maint.retry_per_read);
    reg.gauge(
        "bench.maint_eol_retry_reduction",
        1.0 - eol_maint.retry_per_read / eol.retry_per_read.max(f64::MIN_POSITIVE),
    );
    reg.gauge("bench.wall_ms", wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("lifetime", &mut reg);

    println!(
        "\n(the device aged {} P/E and {:.1} retention-months across {} epochs:",
        eol.pe_cum, eol.months_cum, life.epochs
    );
    println!(
        " retries/read drifted {:.3} -> {:.3} without maintenance; with scrubbing and",
        fresh.retry_per_read, eol.retry_per_read
    );
    println!(
        " wear leveling racing the same schedule it held {:.3} at end-of-life — and the",
        eol_maint.retry_per_read
    );
    println!(" double-run and 1-vs-4-thread checks held, so the campaign is deterministic)");
}
