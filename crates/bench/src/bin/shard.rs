//! Sharded-array scaling curve: aggregate throughput and determinism
//! across 1/2/4/8 shards.
//!
//! Each shard is a complete independent device (own FTL, chips, seeded
//! workload substream); the array front-end fans a fixed total request
//! budget out across the shards and merges the per-shard reports in
//! shard order. Two claims are asserted, not just printed:
//!
//! 1. **Scaling** — the aggregate simulated array throughput (the sum
//!    of per-shard IOPS, i.e. what a host striping across `N`
//!    independent devices observes) at 4 shards must be at least 1.5×
//!    the 1-shard baseline. Wall-clock speedup is reported too, but is
//!    informational only: CI machines may have a single core, where the
//!    thread-per-shard engine cannot help wall time.
//! 2. **Determinism** — the merged report is byte-identical when the
//!    same 4-shard array runs on 1 worker thread vs 4, and when the
//!    whole experiment is repeated; thread scheduling must never reach
//!    the results.
//!
//! Run with: `cargo run --release -p bench --bin shard` (`--smoke` for
//! the CI-sized variant).

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{run_array_eval, ArrayEvalConfig};
use cubeftl::{AgingState, FtlKind, MetricRegistry, StandardWorkload};
use std::time::Instant;

fn main() {
    let bench_wall = Instant::now();
    let mut reg = MetricRegistry::new();
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(8_000);
    let workload = StandardWorkload::Oltp;
    let aging = AgingState::MidLife;

    banner("sharded array — aggregate throughput vs shard count (OLTP, MidLife)");
    let mut t = Table::new([
        "shards",
        "agg IOPS",
        "vs 1 shard",
        "makespan ms",
        "wall ms",
        "p99 rd (ms)",
    ]);
    let mut base_iops = 0.0;
    let mut iops_at_4 = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let arr = ArrayEvalConfig::new(shards);
        let wall = Instant::now();
        let mut r = run_array_eval(FtlKind::Cube, workload, aging, &cfg, &arr);
        let wall_ms = wall.elapsed().as_secs_f64() * 1000.0;
        let m = &mut r.merged;
        assert_eq!(
            m.completed, cfg.requests,
            "the array must complete the full budget at {shards} shards"
        );
        if shards == 1 {
            base_iops = m.iops;
        }
        if shards == 4 {
            iops_at_4 = m.iops;
        }
        t.row([
            format!("{shards}"),
            format!("{:.0}", m.iops),
            format!("{:.2}x", m.iops / base_iops),
            format!("{:.1}", m.sim_time_us / 1000.0),
            format!("{wall_ms:.0}"),
            format!("{:.3}", m.read_latency.percentile(99.0) / 1000.0),
        ]);
        let prefix = format!("shard.{shards}");
        reg.gauge(&format!("{prefix}.agg_iops"), m.iops);
        reg.gauge(&format!("{prefix}.makespan_us"), m.sim_time_us);
        reg.gauge(&format!("{prefix}.wall_ms"), wall_ms);
        reg.gauge(
            &format!("{prefix}.read_p99_us"),
            m.read_latency.percentile(99.0),
        );
    }
    t.print();
    assert!(
        iops_at_4 >= 1.5 * base_iops,
        "4 shards must deliver >= 1.5x the 1-shard aggregate throughput \
         ({iops_at_4:.0} vs {base_iops:.0} IOPS)"
    );
    println!(
        "\n(aggregate IOPS sums independent per-shard device throughput — the \
         host-visible\n\x20array rate; wall-clock depends on the machine's core count and is \
         not asserted)"
    );

    banner("determinism — merged report vs worker-thread count and repetition");
    let report_at = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(4);
        arr.threads = threads;
        let r = run_array_eval(FtlKind::Cube, workload, aging, &cfg, &arr);
        format!("{:?}", r.merged)
    };
    let one = report_at(1);
    assert_eq!(one, report_at(4), "1 vs 4 worker threads must not differ");
    assert_eq!(one, report_at(4), "repeated runs must not differ");
    println!(
        "merged 4-shard report is byte-identical on 1 vs 4 worker threads and across\n\
         repeated runs ({} debug-printed bytes compared)",
        one.len()
    );

    // Machine-readable export: the per-shard-count scaling curve plus
    // the headline speedup and wall clock (the perf-trajectory
    // artifact).
    reg.gauge("bench.scaling_4shard", iops_at_4 / base_iops);
    reg.gauge("bench.wall_ms", bench_wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("shard", &mut reg);
}
