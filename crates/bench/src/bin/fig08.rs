//! Figure 8 — the effect of skipped VFYs on per-state BER and the
//! distribution of `[L_min, L_max]`.
//!
//! (a) For each program state P1..P7, sweep the number of skipped VFYs
//! and measure the resulting BER (normalized over the worst h-layer at
//! 2K P/E + 1-year retention). Skipping up to the state's safe limit
//! leaves the BER unchanged; beyond it, over-programmed fast cells raise
//! the BER rapidly.
//! (b) The measured `[L_min, L_max]` intervals and safe skip counts per
//! state.

use bench::{banner, f2, paper_chip, Table};
use nand3d::{BlockId, ProgramParams, NUM_PROGRAM_STATES};

fn main() {
    let chip = paper_chip();
    let g = *chip.geometry();
    let engine = chip.ispp();
    let env = chip.env();
    let wl = g.wl_addr(BlockId(17), 12, 1);
    let chars = engine.characterize(chip.process(), wl, env, 0);

    // Normalization: worst h-layer at end of life (as in the figure).
    let mut aged_env = env.clone();
    aged_env.set_aging_raw(2000, 12.0);
    let worst = (0..g.hlayers_per_block)
        .map(|h| {
            engine
                .characterize(chip.process(), g.wl_addr(BlockId(17), h, 0), &aged_env, 0)
                .base_ber
        })
        .fold(f64::MIN, f64::max);

    banner("Fig. 8(a) — normalized BER vs number of skipped VFYs per state");
    let mut headers = vec!["N_skip".to_owned()];
    headers.extend((1..=NUM_PROGRAM_STATES).map(|s| format!("P{s}")));
    let mut t = Table::new(headers);
    for n_skip in 0..=10u8 {
        let mut row = vec![n_skip.to_string()];
        for s in 0..NUM_PROGRAM_STATES {
            let mut params = ProgramParams::default();
            params.n_skip[s] = n_skip;
            let out = engine.program(&chars, &params).expect("legal params");
            row.push(f2(out.post_ber / worst));
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nSafe skip limits (L_min - 1): {:?}",
        chars
            .intervals
            .iter()
            .map(|iv| iv.safe_skip())
            .collect::<Vec<_>>()
    );
    println!("(paper: P7 can safely skip ~7 VFYs, P1 only 1; BER grows beyond the limit)");

    banner("Fig. 8(b) — [L_min, L_max] distribution per program state");
    let mut t = Table::new([
        "state",
        "L_min (mean)",
        "L_max (mean)",
        "N_skip (mean)",
        "width",
    ]);
    let mut lmin_sum = [0.0f64; NUM_PROGRAM_STATES];
    let mut lmax_sum = [0.0f64; NUM_PROGRAM_STATES];
    let mut n = 0.0;
    for b in (0..g.blocks_per_chip).step_by(8) {
        for h in 0..g.hlayers_per_block {
            let c = engine.characterize(chip.process(), g.wl_addr(BlockId(b), h, 0), env, 0);
            for s in 0..NUM_PROGRAM_STATES {
                lmin_sum[s] += f64::from(c.intervals[s].lmin);
                lmax_sum[s] += f64::from(c.intervals[s].lmax);
            }
            n += 1.0;
        }
    }
    for s in 0..NUM_PROGRAM_STATES {
        let lmin = lmin_sum[s] / n;
        let lmax = lmax_sum[s] / n;
        t.row([
            format!("P{}", s + 1),
            format!("{lmin:.1}"),
            format!("{lmax:.1}"),
            format!("{:.1}", lmin - 1.0),
            format!("{:.1}", lmax - lmin),
        ]);
    }
    t.print();
    println!("\n(paper example: P7 state has L_min = 7, L_max = 9)");
}
