//! Figure 17 — normalized IOPS of pageFTL / vertFTL / cubeFTL under six
//! workloads at three aging states.
//!
//! This is the paper's headline evaluation (§6.2): cubeFTL improves IOPS
//! by up to 48% over pageFTL and 36% over vertFTL. Run with `--full` for
//! the paper-scale 32-GB SSD (slow); the default reduced scale keeps the
//! topology and FTL behaviour.

use bench::{banner, eval_config_from_args, Table};
use cubeftl::harness::run_fig17_cell;
use cubeftl::{AgingState, StandardWorkload};

fn main() {
    let cfg = eval_config_from_args();
    println!(
        "scale: {} blocks/chip, {} requests per cell",
        cfg.blocks_per_chip, cfg.requests
    );

    let mut best_vs_page: f64 = 0.0;
    let mut best_vs_vert: f64 = 0.0;
    for aging in AgingState::ALL {
        banner(&format!("Fig. 17 — normalized IOPS, {aging}"));
        let mut t = Table::new(["workload", "pageFTL", "vertFTL", "cubeFTL", "cube/page"]);
        for workload in StandardWorkload::ALL {
            let (page, vert, cube) = run_fig17_cell(workload, aging, &cfg);
            let norm = |iops: f64| format!("{:.2}", iops / page.iops);
            best_vs_page = best_vs_page.max(cube.iops / page.iops - 1.0);
            best_vs_vert = best_vs_vert.max(cube.iops / vert.iops - 1.0);
            t.row([
                workload.label().to_owned(),
                norm(page.iops),
                norm(vert.iops),
                norm(cube.iops),
                format!("+{:.0}%", (cube.iops / page.iops - 1.0) * 100.0),
            ]);
        }
        t.print();
    }

    println!(
        "\nmax cubeFTL gain: +{:.0}% over pageFTL (paper: up to 48%), +{:.0}% over vertFTL (paper: up to 36%)",
        best_vs_page * 100.0,
        best_vs_vert * 100.0
    );
}
