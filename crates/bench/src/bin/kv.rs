//! KV application layer: YCSB-A vs YCSB-C on the kvsim LSM engine
//! (PR 10 tentpole), fresh and aged.
//!
//! Runs the miniature LSM-tree engine (`crates/kvsim`) against cubeFTL
//! under the update-heavy YCSB-A and the read-only YCSB-C workloads, at
//! the fresh and end-of-life aging states. Each cell yields both device
//! metrics (IOPS, mean tPROG, NumRetry, retry/read, device WA) and
//! app-level metrics (KV ops, app-WA, p99 read/update page costs,
//! compactions) — the device-side drift composes with the application's
//! own write amplification.
//!
//! Asserts the acceptance bars:
//!
//! * YCSB-A's app-level WA exceeds 1.0 (compaction really amplifies);
//! * at equal measured op counts, YCSB-A's device write traffic
//!   strictly exceeds YCSB-C's;
//! * the aged device retries more than the fresh one under both
//!   workloads (the read path really degrades);
//! * a double run reproduces the curve CSV byte-for-byte;
//! * a 4-shard array KV run is byte-identical at 1 and 4 worker
//!   threads.
//!
//! `--out PATH` overrides the curve path (default `kv_curve.csv`,
//! honouring `$BENCH_JSON_DIR`); `--smoke` runs the CI-scale
//! configuration.
//!
//! Run with: `cargo run --release -p bench --bin kv`

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{
    register_kv_metrics, run_array_kv_eval, run_kv_eval, ArrayEvalConfig, KvSpec, TelemetrySpec,
};
use cubeftl::{
    AgingState, FtlKind, KvAppReport, KvStream, MetricRegistry, StandardWorkload, YcsbKind,
};
use std::time::Instant;

/// One cell of the curve: device and app metrics for one
/// (aging, workload) pair.
struct CurvePoint {
    aging: &'static str,
    kind: YcsbKind,
    iops: f64,
    tprog_mean_us: f64,
    num_retry: u64,
    retry_per_read: f64,
    wa_host: f64,
    wa_total: f64,
    app: KvAppReport,
}

/// The engine shape the bench drives: a small memtable so flushes and
/// compactions cycle many times inside a CI-scale run.
fn bench_spec(kind: YcsbKind) -> KvSpec {
    let mut kv = KvSpec::with_workload(kind);
    kv.keys = 4_096;
    kv.memtable_entries = 512;
    kv
}

/// Runs one evaluation cell.
fn run_cell(
    aging: AgingState,
    aging_label: &'static str,
    kind: YcsbKind,
    cfg: &cubeftl::harness::EvalConfig,
) -> CurvePoint {
    let (r, _) = run_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Rocks, // ignored: the KV layer drives the device
        aging,
        cfg,
        &bench_spec(kind),
        &TelemetrySpec::off(),
        false,
    );
    let app = r.app.expect("KV layer engaged");
    let retry_per_read = if r.sim.reads == 0 {
        0.0
    } else {
        r.sim.ftl.read_retries as f64 / r.sim.reads as f64
    };
    CurvePoint {
        aging: aging_label,
        kind,
        iops: r.sim.iops,
        tprog_mean_us: r.sim.write_latency.mean(),
        num_retry: r.sim.ftl.read_retries,
        retry_per_read,
        wa_host: r.sim.wa_host().unwrap_or(0.0),
        wa_total: r.sim.wa_total().unwrap_or(0.0),
        app,
    }
}

/// The curve as CSV — also the double-run byte-identity witness.
fn curve_csv(points: &[CurvePoint]) -> String {
    let mut csv = String::from(
        "aging,workload,iops,tprog_mean_us,num_retry,retry_per_read,wa_host,wa_total,\
         kv_ops,kv_reads,kv_updates,app_wa_permille,read_p99_pages,update_p99_pages,\
         flushes,compactions,compaction_debt_pages\n",
    );
    for p in points {
        csv.push_str(&format!(
            "{},{},{:.2},{:.3},{},{:.5},{:.5},{:.5},{},{},{},{},{},{},{},{},{}\n",
            p.aging,
            p.kind.label(),
            p.iops,
            p.tprog_mean_us,
            p.num_retry,
            p.retry_per_read,
            p.wa_host,
            p.wa_total,
            p.app.stats.ops,
            p.app.stats.reads,
            p.app.stats.updates,
            p.app.app_wa_permille,
            p.app.read_p99_pages,
            p.app.update_p99_pages,
            p.app.stats.flushes,
            p.app.stats.compactions,
            p.app.compaction_debt_pages,
        ));
    }
    csv
}

/// Measured device write traffic (SST + WAL pages) a standalone engine
/// emits for exactly `ops` measured operations — the equal-op-count
/// comparison the A-vs-C bar is stated over.
fn write_pages_at_ops(kind: YcsbKind, space: u64, seed: u64, ops: u64) -> u64 {
    let spec = bench_spec(kind);
    let mut s = KvStream::new(spec.kv_config(), kind, space, seed);
    while s.report().stats.ops < ops {
        let _ = s.next();
    }
    let r = s.report();
    r.stats.sst_pages_written - r.load_sst_pages + r.stats.wal_pages_written
}

/// Canonical per-shard counter dump of an array KV run — the
/// thread-invariance witness.
fn array_fingerprint(r: &cubeftl::harness::ArrayKvEvalReport) -> String {
    let mut s = format!(
        "merged: iops {:.4} completed {} retries {}\n",
        r.merged.iops, r.merged.completed, r.merged.ftl.read_retries
    );
    for (i, sh) in r.shards.iter().enumerate() {
        s.push_str(&format!(
            "shard {i}: completed {} reads {} writes {} retries {} gc {}\n",
            sh.completed, sh.reads, sh.writes, sh.ftl.read_retries, sh.ftl.gc_runs,
        ));
    }
    for (i, app) in r.apps.iter().enumerate() {
        s.push_str(&format!("app {i}: {app:?}\n"));
    }
    s
}

fn main() {
    let wall = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_owned());
            std::path::Path::new(&dir)
                .join("kv_curve.csv")
                .to_string_lossy()
                .into_owned()
        });

    let mut cfg = eval_config_from_args();
    // Enough device requests that the engine cycles through many
    // flush/compaction rounds, bounded for CI runtimes.
    cfg.requests = cfg.requests.clamp(8_000, 24_000);

    banner("kv application layer — YCSB-A vs YCSB-C on the kvsim LSM engine (cubeFTL)");
    let spec = bench_spec(YcsbKind::A);
    println!(
        "engine: {} keys, memtable {} entries, L0 trigger {}, fanout {}, {} levels; \
         {} device requests per cell\n",
        spec.keys, spec.memtable_entries, spec.l0_files, spec.fanout, spec.max_levels, cfg.requests,
    );

    let cells = [(AgingState::Fresh, "fresh"), (AgingState::EndOfLife, "eol")];
    let mut points = Vec::new();
    for (aging, label) in cells {
        for kind in [YcsbKind::A, YcsbKind::C] {
            points.push(run_cell(aging, label, kind, &cfg));
        }
    }

    let mut t = Table::new([
        "aging",
        "workload",
        "IOPS",
        "tPROG(us)",
        "NumRetry",
        "retry/read",
        "WA(dev)",
        "kv ops",
        "app-WA",
        "rd p99 pg",
        "compactions",
    ]);
    for p in &points {
        t.row([
            p.aging.to_owned(),
            p.kind.label().to_owned(),
            format!("{:.0}", p.iops),
            format!("{:.1}", p.tprog_mean_us),
            p.num_retry.to_string(),
            format!("{:.3}", p.retry_per_read),
            format!("{:.2}", p.wa_host),
            p.app.stats.ops.to_string(),
            format!("{:.2}", p.app.app_wa()),
            p.app.read_p99_pages.to_string(),
            p.app.stats.compactions.to_string(),
        ]);
    }
    t.print();

    let csv = curve_csv(&points);
    std::fs::write(&out_path, &csv).expect("write curve CSV");
    println!("\ncurve written to {out_path}");

    let cell = |aging: &str, kind: YcsbKind| {
        points
            .iter()
            .find(|p| p.aging == aging && p.kind == kind)
            .expect("cell ran")
    };
    let fresh_a = cell("fresh", YcsbKind::A);
    let fresh_c = cell("fresh", YcsbKind::C);
    let eol_a = cell("eol", YcsbKind::A);
    let eol_c = cell("eol", YcsbKind::C);

    // Bar 1: compaction amplifies — YCSB-A writes more than one device
    // page per user page at the application level.
    assert!(
        fresh_a.app.app_wa_permille > 1000,
        "YCSB-A app-WA must exceed 1.0 ({} permille)",
        fresh_a.app.app_wa_permille
    );
    assert!(
        fresh_a.app.stats.compactions > 0,
        "YCSB-A must trigger compactions"
    );

    // Bar 2: at equal measured op counts, the update-heavy workload's
    // device write traffic strictly exceeds the read-only one's.
    let ops = 20_000u64;
    let space = 16_384u64;
    let wr_a = write_pages_at_ops(YcsbKind::A, space, cfg.seed, ops);
    let wr_c = write_pages_at_ops(YcsbKind::C, space, cfg.seed, ops);
    println!(
        "\nequal-op write traffic ({ops} ops over {space} pages): \
         ycsb_a {wr_a} pages vs ycsb_c {wr_c} pages"
    );
    assert!(
        wr_a > wr_c,
        "YCSB-A must out-write YCSB-C at equal op counts ({wr_a} vs {wr_c} pages)"
    );

    // Bar 3: the aged device retries more than the fresh one under
    // both workloads.
    assert!(
        eol_a.num_retry > fresh_a.num_retry,
        "end-of-life must retry more than fresh under YCSB-A ({} vs {})",
        eol_a.num_retry,
        fresh_a.num_retry
    );
    assert!(
        eol_c.num_retry > fresh_c.num_retry,
        "end-of-life must retry more than fresh under YCSB-C ({} vs {})",
        eol_c.num_retry,
        fresh_c.num_retry
    );

    // Bar 4: a double run reproduces the curve byte-for-byte.
    let mut again = Vec::new();
    for (aging, label) in cells {
        for kind in [YcsbKind::A, YcsbKind::C] {
            again.push(run_cell(aging, label, kind, &cfg));
        }
    }
    assert_eq!(
        csv,
        curve_csv(&again),
        "double run must reproduce the KV curve byte-identically"
    );

    // Bar 5: a 4-shard array KV run is worker-thread invariant.
    let mut arr = ArrayEvalConfig::new(4);
    arr.threads = 1;
    let (serial, _) = run_array_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
        &arr,
        &bench_spec(YcsbKind::A),
        &TelemetrySpec::off(),
    );
    arr.threads = 4;
    let (threaded, _) = run_array_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
        &arr,
        &bench_spec(YcsbKind::A),
        &TelemetrySpec::off(),
    );
    assert_eq!(
        array_fingerprint(&serial),
        array_fingerprint(&threaded),
        "array KV run must be byte-identical at 1 and 4 worker threads"
    );

    // Machine-readable export: every cell's device and app metrics plus
    // the headline bars and wall clock.
    let mut reg = MetricRegistry::new();
    for p in &points {
        let prefix = format!("kv.{}.{}", p.aging, p.kind.label());
        reg.gauge(&format!("{prefix}.iops"), p.iops);
        reg.gauge(&format!("{prefix}.tprog_mean_us"), p.tprog_mean_us);
        reg.counter(&format!("{prefix}.num_retry"), p.num_retry);
        reg.gauge(&format!("{prefix}.retry_per_read"), p.retry_per_read);
        reg.gauge(&format!("{prefix}.wa_host"), p.wa_host);
        reg.gauge(&format!("{prefix}.wa_total"), p.wa_total);
        register_kv_metrics(&mut reg, &format!("{prefix}."), &p.app, 0.0);
    }
    reg.gauge("bench.fresh_a_app_wa", fresh_a.app.app_wa());
    reg.counter("bench.equal_op_write_pages_a", wr_a);
    reg.counter("bench.equal_op_write_pages_c", wr_c);
    reg.gauge(
        "bench.a_over_c_write_ratio",
        wr_a as f64 / (wr_c.max(1)) as f64,
    );
    reg.gauge("bench.wall_ms", wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("kv", &mut reg);

    println!(
        "\n(YCSB-A amplified {:.2}x at the application level and out-wrote read-only",
        fresh_a.app.app_wa()
    );
    println!(
        " YCSB-C {}-vs-{} pages at equal op counts; aging added {} retries under A;",
        wr_a,
        wr_c,
        eol_a.num_retry - fresh_a.num_retry
    );
    println!(" the double-run and 1-vs-4-thread checks held, so the KV stack is deterministic)");
}
