//! Multi-tenant QoS front-end: weight-proportionality under saturation
//! plus the overload sweep (the protected tenant's SLO holds while shed
//! load lands only on best-effort tenants).
//!
//! **Calibration** first measures the device's uniform-traffic capacity
//! by slamming a small saturated burst through the front (queues stay
//! backlogged end to end, so device IOPS equals service capacity).
//!
//! **Phase A** then drives 4 tenants with weights 8:4:2:1 at 2× that
//! capacity. Tenants emit single-page uniform traffic
//! ([`TenantMix::Uniform`]), so completed request counts equal DWRR
//! service shares; the bench asserts every tenant's completion share
//! lands within ±5% of its configured weight share.
//!
//! **Phase B** sweeps offered load at 1.0/1.5/2.0× capacity with
//! *equal* per-tenant arrival rates over weights `[8, 1, 1, 1]`:
//! offered load is uniform while service stays weight-differentiated,
//! so admission control sheds the best-effort tenants first. At 2× the
//! bench asserts the protected tenant shed nothing, its p99 read
//! latency stayed within the SLO, and every shed request landed on a
//! best-effort tenant.
//!
//! A double run of the 2× cell must reproduce the full report
//! byte-identically (the front adds no nondeterminism).
//!
//! `--out PATH` writes both phases as one CSV (`phase` column);
//! `BENCH_qos.json` carries the machine-readable export (see
//! [`bench::write_bench_json`]).
//!
//! Run with: `cargo run --release -p bench --bin qos` (`--smoke` for
//! the CI-sized variant).

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::{run_qos_eval, EvalConfig, QosSpec, TelemetrySpec};
use cubeftl::{AgingState, FtlKind, MetricRegistry, StandardWorkload, TenantClass, TenantMix};
use std::time::Instant;

const KIND: FtlKind = FtlKind::Cube;
const WORKLOAD: StandardWorkload = StandardWorkload::Mail; // overridden by the Uniform mix
const AGING: AgingState = AgingState::MidLife;

/// Phase A / calibration weights.
const PROP_WEIGHTS: [u32; 4] = [8, 4, 2, 1];
/// Phase B weights: one protected tenant vs three best-effort ones.
const SWEEP_WEIGHTS: [u32; 4] = [8, 1, 1, 1];
/// Completion-share tolerance of the proportionality assert.
const SHARE_TOLERANCE: f64 = 0.05;
/// Read SLO in mean uniform-request service times. A saturated
/// best-effort queue drains in ~176 service times (sq_depth / a 1/11
/// weight share); the protected tenant's p99 sits near ~80 — its DWRR
/// drain is ~22, plus device-level queueing (GC, write-buffer stalls)
/// shared with every tenant. 120 splits the two regimes.
const SLO_SERVICE_TIMES: f64 = 120.0;

fn base_spec() -> QosSpec {
    QosSpec {
        queues: 4,
        tenants: 4,
        weights: PROP_WEIGHTS.to_vec(),
        sq_depth: 16,
        mix: Some(TenantMix::Uniform),
        ..QosSpec::off()
    }
}

/// Measures uniform-traffic device capacity (requests per simulated
/// second): a short all-at-once burst keeps every queue backlogged for
/// the whole run, so the device serves at capacity end to end.
fn calibrate(cfg: &EvalConfig) -> f64 {
    let mut cal_cfg = cfg.clone();
    cal_cfg.requests = cfg.requests.min(2_000);
    let spec = QosSpec {
        arrival_interval_us: 0.01,
        ..base_spec()
    };
    let (r, _) = run_qos_eval(
        KIND,
        WORKLOAD,
        AGING,
        &cal_cfg,
        &spec,
        &TelemetrySpec::off(),
    );
    assert!(r.sim.iops > 0.0, "calibration run completed nothing");
    r.sim.iops
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let wall = Instant::now();

    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.clamp(6_000, 20_000);
    let mut csv = String::from(
        "phase,cell,tenant_or_class,weight,admitted,shed,completed,share,expected_share,\
         read_p99_us,slo_violations\n",
    );

    banner("QoS front-end — capacity calibration (uniform single-page traffic)");
    let capacity = calibrate(&cfg);
    let service_us = 1e6 / capacity;
    let slo_read_us = SLO_SERVICE_TIMES * service_us;
    println!(
        "device capacity {capacity:.0} req/s (mean service {service_us:.2} us); \
         read SLO {:.3} ms",
        slo_read_us / 1000.0
    );

    // ---- Phase A: weight-proportional service under saturation -------
    banner("phase A — completion shares vs weights 8:4:2:1 at 2x capacity");
    let spec_a = QosSpec {
        arrival_interval_us: 1e6 / (2.0 * capacity),
        ..base_spec()
    };
    let (ra, _) = run_qos_eval(KIND, WORKLOAD, AGING, &cfg, &spec_a, &TelemetrySpec::off());
    let total_completed: u64 = ra.qos.tenants.iter().map(|t| t.completed).sum();
    let w_total: u32 = PROP_WEIGHTS.iter().sum();
    let mut t = Table::new([
        "tenant",
        "weight",
        "admitted",
        "shed",
        "completed",
        "share",
        "expected",
        "err",
    ]);
    let mut worst_err = 0.0f64;
    for tn in &ra.qos.tenants {
        let share = tn.completed as f64 / total_completed as f64;
        let expected = f64::from(tn.weight) / f64::from(w_total);
        let err = (share - expected).abs() / expected;
        worst_err = worst_err.max(err);
        t.row([
            format!("{}", tn.id),
            format!("{}", tn.weight),
            format!("{}", tn.admitted),
            format!("{}", tn.shed),
            format!("{}", tn.completed),
            format!("{:.3}", share),
            format!("{:.3}", expected),
            format!("{:.1}%", err * 100.0),
        ]);
        csv.push_str(&format!(
            "proportionality,2x,tenant{},{},{},{},{},{:.4},{:.4},{:.1},{}\n",
            tn.id,
            tn.weight,
            tn.admitted,
            tn.shed,
            tn.completed,
            share,
            expected,
            tn.read_latency.percentile(99.0),
            tn.violations,
        ));
        assert!(
            err <= SHARE_TOLERANCE,
            "tenant {} (weight {}): completion share {share:.3} strays {:.1}% from the \
             configured weight share {expected:.3} (tolerance {:.0}%)",
            tn.id,
            tn.weight,
            err * 100.0,
            SHARE_TOLERANCE * 100.0
        );
    }
    t.print();
    println!(
        "\n(every share within {:.0}% of its weight share; worst error {:.1}%)",
        SHARE_TOLERANCE * 100.0,
        worst_err * 100.0
    );

    // ---- Phase B: overload sweep with a protected tenant -------------
    banner("phase B — overload sweep, weights [8,1,1,1], equal arrival rates");
    let mut t = Table::new([
        "load",
        "class",
        "tenants",
        "admitted",
        "shed",
        "completed",
        "p99 rd (ms)",
        "SLO viol",
    ]);
    let mut at_2x = None;
    for load in [1.0f64, 1.5, 2.0] {
        let spec = QosSpec {
            weights: SWEEP_WEIGHTS.to_vec(),
            arrival_interval_us: 1e6 / (load * capacity),
            equal_arrivals: true,
            slo_read_us: Some(slo_read_us),
            ..base_spec()
        };
        let (r, _) = run_qos_eval(KIND, WORKLOAD, AGING, &cfg, &spec, &TelemetrySpec::off());
        for (class, sum) in r.qos.by_class() {
            t.row([
                format!("{load:.1}x"),
                class.label().to_owned(),
                format!("{}", sum.tenants),
                format!("{}", sum.admitted),
                format!("{}", sum.shed),
                format!("{}", sum.completed),
                format!("{:.3}", sum.read_latency.percentile(99.0) / 1000.0),
                format!("{}", sum.violations),
            ]);
            csv.push_str(&format!(
                "overload,{load:.1}x,{},,{},{},{},,,{:.1},{}\n",
                class.label(),
                sum.admitted,
                sum.shed,
                sum.completed,
                sum.read_latency.percentile(99.0),
                sum.violations,
            ));
        }
        if load == 2.0 {
            at_2x = Some((r, spec));
        }
    }
    t.print();

    let (r2, spec2) = at_2x.expect("2x cell ran");
    let classes = r2.qos.by_class();
    let protected = &classes
        .iter()
        .find(|(c, _)| *c == TenantClass::Protected)
        .expect("protected class present")
        .1;
    let best_effort = &classes
        .iter()
        .find(|(c, _)| *c == TenantClass::BestEffort)
        .expect("best-effort class present")
        .1;
    let prot_p99 = protected.read_latency.percentile(99.0);
    assert!(
        protected.shed == 0,
        "protected tenant must shed nothing at 2x overload, shed {}",
        protected.shed
    );
    assert!(
        best_effort.shed > 0,
        "2x overload must shed best-effort load (shed none — not actually overloaded?)"
    );
    assert!(
        prot_p99 <= slo_read_us,
        "protected p99 read latency {:.3} ms must stay within the {:.3} ms SLO",
        prot_p99 / 1000.0,
        slo_read_us / 1000.0
    );
    println!(
        "\n(at 2x overload: protected shed 0 of {} arrivals and held p99 read \
         {:.3} ms <= SLO {:.3} ms,\n\x20while all {} shed requests landed on \
         best-effort tenants — p99 read {:.3} ms)",
        protected.admitted,
        prot_p99 / 1000.0,
        slo_read_us / 1000.0,
        best_effort.shed,
        best_effort.read_latency.percentile(99.0) / 1000.0
    );

    // Determinism: the 2x cell double-runs byte-identically.
    let (again, _) = run_qos_eval(KIND, WORKLOAD, AGING, &cfg, &spec2, &TelemetrySpec::off());
    assert_eq!(
        format!("{:?}", (&r2.sim, &r2.qos.tenants)),
        format!("{:?}", (&again.sim, &again.qos.tenants)),
        "double run must reproduce the 2x overload cell byte-identically"
    );
    println!("(double run of the 2x cell reproduced byte-identically)");

    if let Some(path) = &out_path {
        std::fs::write(path, &csv).expect("write QoS CSV");
        println!("\ncurve written to {path}");
    }

    // Machine-readable export: the 2x overload cell's device + QoS
    // metrics plus the bench's own headline numbers.
    let mut reg = MetricRegistry::new();
    r2.sim.register_metrics(&mut reg, "ssd");
    r2.qos.register_metrics(&mut reg);
    reg.gauge("bench.capacity_req_per_s", capacity);
    reg.gauge("bench.slo_read_us", slo_read_us);
    reg.gauge("bench.prop_worst_share_err", worst_err);
    reg.gauge("bench.protected_read_p99_us", prot_p99);
    reg.counter("bench.best_effort_shed", best_effort.shed);
    reg.gauge("bench.wall_ms", wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("qos", &mut reg);
}
