//! The §3.1 characterization campaign, at sampled scale.
//!
//! The paper tested 160 chips × 128 blocks (11,520,000 pages /
//! 3,840,000 WLs), measuring `N_ret(w_ij, x, t)` across P/E cycles and
//! retention times. This binary runs the same protocol over a sampled
//! population (default 8 chips × 128 blocks; `--full` raises it) and
//! reports the two §3.1 metrics across the aging grid:
//!
//! * `ΔH` distribution (intra-layer similarity — expected ≈ 1),
//! * `ΔV` distribution (inter-layer variability — expected 1.6…2.3).
//!
//! Run with: `cargo run --release -p bench --bin campaign`

use bench::{banner, f3, Table, FIGURE_SEED};
use nand3d::{delta_h, delta_v, BlockId, FlashArray, NandConfig};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let chips = if full { 32 } else { 8 };
    let blocks_per_chip = 128u32;
    let array = FlashArray::new(NandConfig::paper(), chips, FIGURE_SEED);
    let g = *array.chip(0).expect("chip 0").geometry();

    let wls = chips as u64
        * u64::from(blocks_per_chip)
        * u64::from(g.hlayers_per_block)
        * u64::from(g.wls_per_hlayer);
    println!(
        "population: {chips} chips x {blocks_per_chip} blocks = {} WLs / {} pages",
        wls,
        wls * u64::from(g.pages_per_wl)
    );
    println!("(paper: 160 chips x 128 blocks = 3,840,000 WLs / 11,520,000 pages)");

    let grid = [
        (0u32, 0.0f64),
        (500, 1.0),
        (1000, 6.0),
        (2000, 1.0),
        (2000, 12.0),
    ];

    banner("ΔH distribution per aging condition (intra-layer similarity, §3.2)");
    let mut t = Table::new(["P/E", "ret (mo)", "p50", "p99", "max", "share > 1.08"]);
    for (pe, months) in grid {
        let mut dhs = Vec::new();
        for chip in array.iter() {
            let process = chip.process();
            let rel = chip.reliability();
            for b in 0..blocks_per_chip {
                for hl in 0..g.hlayers_per_block {
                    let bers: Vec<f64> = (0..g.wls_per_hlayer)
                        .map(|v| rel.ber(process, g.wl_addr(BlockId(b), hl, v), pe, months))
                        .collect();
                    dhs.push(delta_h(&bers));
                }
            }
        }
        dhs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let above = dhs.iter().filter(|d| **d > 1.08).count();
        t.row([
            pe.to_string(),
            format!("{months}"),
            f3(percentile(&dhs, 50.0)),
            f3(percentile(&dhs, 99.0)),
            f3(*dhs.last().expect("nonempty")),
            format!("{:.2}%", 100.0 * above as f64 / dhs.len() as f64),
        ]);
    }
    t.print();
    println!("\n(paper: virtually all ΔH values are 1 regardless of flash aging conditions)");

    banner("ΔV distribution per aging condition (inter-layer variability, §3.3)");
    let mut t = Table::new(["P/E", "ret (mo)", "p25", "p50", "p75", "max"]);
    for (pe, months) in grid {
        let mut dvs = Vec::new();
        for chip in array.iter() {
            let process = chip.process();
            let rel = chip.reliability();
            for b in 0..blocks_per_chip {
                let bers: Vec<f64> = (0..g.hlayers_per_block)
                    .map(|hl| rel.ber(process, g.wl_addr(BlockId(b), hl, 0), pe, months))
                    .collect();
                dvs.push(delta_v(&bers));
            }
        }
        dvs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        t.row([
            pe.to_string(),
            format!("{months}"),
            f3(percentile(&dvs, 25.0)),
            f3(percentile(&dvs, 50.0)),
            f3(percentile(&dvs, 75.0)),
            f3(*dvs.last().expect("nonempty")),
        ]);
    }
    t.print();
    println!("\n(paper: ΔV ≈ 1.6 fresh, ≈ 2.3 at 2K P/E + 1-year retention, not easily");
    println!(" predictable across blocks — motivating run-time monitoring over offline");
    println!(" per-layer tables)");
}
