//! Figure 13 — reliability of the three program sequences.
//!
//! Programs whole blocks in horizontal-first, vertical-first and mixed
//! (MOS) order and compares the resulting BER. 3D NAND's select-line
//! transistors isolate v-layers, so the orders are reliability-equivalent
//! (the paper measured <3% difference, attributable to RTN).

use bench::{banner, f3, paper_chip, Table};
use cubeftl::ProgramOrder;
use nand3d::{BlockId, ProgramParams, WlData};

fn main() {
    let mut chip = paper_chip();
    let g = *chip.geometry();

    banner("Fig. 13 — normalized BER per program sequence");
    let mut results = Vec::new();
    for order in ProgramOrder::ALL {
        // Program the *same* blocks for every order (erasing in
        // between), so the comparison isolates the ordering effect the
        // way the paper's controlled experiment does.
        let mut sum = 0.0;
        let mut n = 0.0;
        for rep in 0..8u32 {
            let block = BlockId(60 + rep * 7);
            chip.erase(block).expect("in range");
            let mut tag = 0u64;
            for wl in order.sequence(&g, block).collect::<Vec<_>>() {
                let report = chip
                    .program_wl(wl, WlData::host(tag), &ProgramParams::default())
                    .expect("erased WL");
                sum += report.post_ber;
                n += 1.0;
                tag += 3;
            }
        }
        results.push((order, sum / n));
    }

    let reference = results[0].1;
    let mut t = Table::new(["program sequence", "mean BER (normalized)"]);
    for (order, ber) in &results {
        t.row([order.label().to_owned(), f3(ber / reference)]);
    }
    t.print();

    let max = results.iter().map(|r| r.1).fold(f64::MIN, f64::max);
    let min = results.iter().map(|r| r.1).fold(f64::MAX, f64::min);
    println!(
        "\nmax difference between sequences: {:.2}% (paper: <3%, from RTN)",
        (max / min - 1.0) * 100.0
    );
}
