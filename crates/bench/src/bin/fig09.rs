//! Figure 9 — error balancing between h-layers.
//!
//! Before balancing (a): under the default `V_Start`/`V_Final`, reliable
//! h-layers sit far below the ECC limit — wasted spare margin `S_M`.
//! After balancing (b): each h-layer spends its own measured margin on a
//! shorter program, pushing every layer's BER *toward* (but never past)
//! the ECC correction capability.

use bench::{banner, exemplar_layers, f2, paper_chip, Table};
use nand3d::ispp::split_margin_mv;
use nand3d::{AgingState, BlockId, ProgramParams};

fn main() {
    let mut chip = paper_chip();
    chip.set_aging(AgingState::MidLife);
    let g = *chip.geometry();
    let engine = chip.ispp();
    let ecc = chip.config().model.reliability.ecc_capability_ber;
    let block = BlockId(17);

    banner("Fig. 9 — BER per h-layer before/after PS-aware window adjustment");
    let mut t = Table::new([
        "h-layer",
        "before (x ECC limit)",
        "after (x ECC limit)",
        "margin spent (mV)",
        "tPROG saved",
    ]);
    for (label, h) in exemplar_layers(&chip) {
        let chars = engine.characterize(chip.process(), g.wl_addr(block, h, 1), chip.env(), 0);
        let before = engine
            .program(&chars, &ProgramParams::default())
            .expect("default");
        let (up, down) = split_margin_mv(chars.safe_margin_mv, engine.ispp_model());
        let after = engine
            .program(
                &chars,
                &ProgramParams {
                    v_start_up_mv: up,
                    v_final_down_mv: down,
                    ..ProgramParams::default()
                },
            )
            .expect("within safe margin");
        assert!(
            after.post_ber < ecc,
            "balancing must stay under the ECC limit"
        );
        t.row([
            label.to_owned(),
            f2(before.post_ber / ecc),
            f2(after.post_ber / ecc),
            format!("{:.0}", chars.safe_margin_mv),
            format!(
                "{:.1}%",
                100.0 * (1.0 - after.latency_us / before.latency_us)
            ),
        ]);
    }
    t.print();
    println!("\n(paper Fig. 9: the spare margin S_M of reliable layers is re-spent on");
    println!(" shorter programs while BER stays within the ECC correction capability)");
}
