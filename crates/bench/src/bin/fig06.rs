//! Figure 6 — vertical inter-layer variability.
//!
//! (a–c) Per-h-layer normalized BER (leading WL) at three aging states;
//! ΔV grows from ≈1.6 (fresh) to ≈2.3 (2K P/E + 1-year retention).
//! (d) Per-block ΔV differences (two sample blocks and the population
//! spread).

use bench::{banner, f2, f3, paper_chip, Table};
use nand3d::{delta_v, BlockId};

fn main() {
    let chip = paper_chip();
    let g = *chip.geometry();
    let process = chip.process();
    let rel = chip.reliability();
    let block = BlockId(17);

    // Normalization reference: the most reliable h-layer of a fresh
    // block with no retention (as in the paper).
    let reference = (0..g.hlayers_per_block)
        .map(|h| rel.ber(process, g.wl_addr(block, h, 0), 0, 0.0))
        .fold(f64::MAX, f64::min);

    banner("Fig. 6(a)-(c) — normalized BER per h-layer (leading WL), block 17");
    let mut t = Table::new(["h-layer", "fresh", "2K+1mo", "2K+1yr"]);
    let states = [(0u32, 0.0f64), (2000, 1.0), (2000, 12.0)];
    for h in 0..g.hlayers_per_block {
        let mut row = vec![format!("{h}")];
        for (pe, months) in states {
            let ber = rel.ber(process, g.wl_addr(block, h, 0), pe, months);
            row.push(f2(ber / reference));
        }
        t.row(row);
    }
    t.print();

    banner("ΔV per aging state (averaged over 64 blocks)");
    let mut t = Table::new(["aging", "mean ΔV", "paper"]);
    let paper_vals = ["≈1.6", "-", "≈2.3"];
    for ((pe, months), paper) in states.into_iter().zip(paper_vals) {
        let mut sum = 0.0;
        for b in 0..64u32 {
            let bers: Vec<f64> = (0..g.hlayers_per_block)
                .map(|h| rel.ber(process, g.wl_addr(BlockId(b), h, 0), pe, months))
                .collect();
            sum += delta_v(&bers);
        }
        t.row([
            format!("{pe} P/E + {months} mo"),
            f3(sum / 64.0),
            paper.to_owned(),
        ]);
    }
    t.print();

    banner("Fig. 6(d) — per-block ΔV differences (2K P/E + 1-year retention)");
    let dv = |b: u32| -> f64 {
        let bers: Vec<f64> = (0..g.hlayers_per_block)
            .map(|h| rel.ber(process, g.wl_addr(BlockId(b), h, 0), 2000, 12.0))
            .collect();
        delta_v(&bers)
    };
    let mut dvs: Vec<(u32, f64)> = (0..128u32).map(|b| (b, dv(b))).collect();
    dvs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    // The paper shows two sample blocks differing by 18%; the upper and
    // lower quartiles of the population are representative samples.
    let (bmin, vmin) = dvs[dvs.len() / 4];
    let (bmax, vmax) = dvs[dvs.len() * 3 / 4];
    let mut t = Table::new(["block", "ΔV"]);
    t.row([format!("Block I  (#{bmax})"), f3(vmax)]);
    t.row([format!("Block II (#{bmin})"), f3(vmin)]);
    t.print();
    println!(
        "\nBlock I ΔV exceeds Block II by {:.0}% (paper: 18%); population spread {:.0}%",
        (vmax / vmin - 1.0) * 100.0,
        (dvs.last().expect("nonempty").1 / dvs[0].1 - 1.0) * 100.0
    );
}
