//! Shared utilities for the figure-regeneration binaries
//! (`src/bin/figNN.rs`) and the Criterion benches.
//!
//! Each binary regenerates the data series of one figure of the paper;
//! see `DESIGN.md` for the figure → binary index. The binaries accept:
//!
//! * `--full` — the paper-scale SSD (428 blocks/chip ≈ 32 GB),
//! * `--smoke` — a tiny CI-scale run,
//! * `--requests N` — override the simulated request count,
//! * (default) — the reduced scale (64 blocks/chip), which preserves the
//!   topology and FTL behaviour at laptop runtimes.

use cubeftl::harness::EvalConfig;
use cubeftl::MetricRegistry;
use nand3d::{NandChip, NandConfig};

/// Seed used by every figure binary (reproducible output).
pub const FIGURE_SEED: u64 = 2019;

/// A paper-configuration chip for characterization figures.
pub fn paper_chip() -> NandChip {
    NandChip::new(NandConfig::paper(), FIGURE_SEED)
}

/// The paper's exemplar h-layers on `chip`: (label, layer index) for
/// (α, β, κ, ω) — top edge, most reliable, mid-stack rugged, bottom edge.
pub fn exemplar_layers(chip: &NandChip) -> [(&'static str, u16); 4] {
    let [a, b, k, o] = chip.process().exemplar_layers();
    [
        ("h-layer_alpha", a),
        ("h-layer_beta", b),
        ("h-layer_kappa", k),
        ("h-layer_omega", o),
    ]
}

/// Parses the common CLI flags of the figure binaries.
pub fn eval_config_from_args() -> EvalConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--full") {
        EvalConfig::paper()
    } else if args.iter().any(|a| a == "--smoke") {
        EvalConfig::smoke()
    } else {
        EvalConfig::reduced()
    };
    if let Some(i) = args.iter().position(|a| a == "--requests") {
        if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            cfg.requests = n;
        }
    }
    cfg
}

/// Version stamp shared by every `BENCH_*.json` artifact. Bump it when
/// an entry is renamed or its meaning changes so downstream consumers
/// (the CI regression-warning step, local diff scripts) can tell a
/// schema break from a real perf shift.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Writes a `BENCH_<name>.json` perf artifact: the registry exported
/// through the metrics exporter (name-sorted NDJSON, one object per
/// line — the schema of every other telemetry export). This seeds the
/// perf trajectory ROADMAP item 4 asks for: each bench binary registers
/// its headline numbers plus a `bench.wall_ms` gauge, CI uploads the
/// files, and successive runs form the baseline for regression gates.
///
/// Every artifact carries `bench.schema_version` =
/// [`BENCH_SCHEMA_VERSION`], injected here so individual binaries
/// cannot drift out of step.
///
/// The file lands in `$BENCH_JSON_DIR` when set, else the current
/// directory. Returns the path written.
pub fn write_bench_json(name: &str, reg: &mut MetricRegistry) -> std::path::PathBuf {
    reg.counter("bench.schema_version", BENCH_SCHEMA_VERSION);
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, reg.to_ndjson())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    // stderr, so binaries with machine-readable stdout (active_sweep)
    // can export without polluting their pipe output.
    eprintln!("\nperf export written to {}", path.display());
    path
}

/// A minimal fixed-width text-table printer for figure output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as `x.xx`.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Prints a figure banner to stderr — for binaries whose stdout is a
/// machine-readable export (e.g. `active_sweep`'s metrics NDJSON).
pub fn banner_err(title: &str) {
    eprintln!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["layer", "BER"]);
        t.row(["h-layer_alpha", "1.00"]);
        t.row(["β", "0.52"]);
        let s = t.render();
        assert!(s.contains("layer"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn exemplars_are_usable() {
        let chip = paper_chip();
        let ex = exemplar_layers(&chip);
        assert_eq!(ex[0].1, 0);
        assert_eq!(ex[3].1, 47);
    }
}
