//! Structured event trace: typed records, category mask, collector.

use crate::fmt_num;
use std::fmt::Write as _;

/// Bitmask of event categories a [`Collector`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventMask(u32);

impl EventMask {
    /// Host I/O completions (read/write/trim latency).
    pub const HOST_IO: EventMask = EventMask(1 << 0);
    /// ISPP WL programs (pulses, verifies, margin excess, abort flag).
    pub const ISPP: EventMask = EventMask(1 << 1);
    /// Read-retry chains (retry count, recovered fault kind).
    pub const READ_RETRY: EventMask = EventMask(1 << 2);
    /// GC victim selection and migration/erase.
    pub const GC: EventMask = EventMask(1 << 3);
    /// Background maintenance units (scrub, wear-level, re-monitor).
    pub const MAINT: EventMask = EventMask(1 << 4);
    /// L2P checkpoint flushes to the metadata region.
    pub const CKPT: EventMask = EventMask(1 << 5);
    /// Sudden-power-off cut and boot-recovery phases.
    pub const SPO: EventMask = EventMask(1 << 6);
    /// OPM leader monitor / §4.1.4 demotion transitions.
    pub const OPM: EventMask = EventMask(1 << 7);
    /// Host front-end queue transitions (admission shed, backpressure).
    pub const HOSTQ: EventMask = EventMask(1 << 8);
    /// Per-tenant SLO attainment summaries.
    pub const SLO: EventMask = EventMask(1 << 9);
    /// Whole-shard failure and degraded-mode reconstruction reads.
    pub const DEGRADED: EventMask = EventMask(1 << 10);
    /// Background rebuild units onto a spare shard.
    pub const REBUILD: EventMask = EventMask(1 << 11);
    /// Lifetime-campaign epoch barriers (fast-forward aging steps).
    pub const AGING: EventMask = EventMask(1 << 12);
    /// kvsim application-level maintenance (memtable flushes, LSM
    /// compactions).
    pub const KV: EventMask = EventMask(1 << 13);
    /// Every category.
    pub const ALL: EventMask = EventMask(0x3fff);
    /// No category (the disabled collector).
    pub const NONE: EventMask = EventMask(0);

    /// Name table used by [`EventMask::parse`] and `--trace-events`.
    pub const NAMES: [(&'static str, EventMask); 14] = [
        ("host", Self::HOST_IO),
        ("ispp", Self::ISPP),
        ("retry", Self::READ_RETRY),
        ("gc", Self::GC),
        ("maint", Self::MAINT),
        ("ckpt", Self::CKPT),
        ("spo", Self::SPO),
        ("opm", Self::OPM),
        ("hostq", Self::HOSTQ),
        ("slo", Self::SLO),
        ("degraded", Self::DEGRADED),
        ("rebuild", Self::REBUILD),
        ("aging", Self::AGING),
        ("kv", Self::KV),
    ];

    /// Whether every bit of `other` is enabled here.
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no category is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// Parses a `--trace-events` value: `all`, `none`, or a
    /// comma-separated list of category names (see [`EventMask::NAMES`]).
    pub fn parse(spec: &str) -> Result<EventMask, String> {
        match spec.trim() {
            "all" => return Ok(Self::ALL),
            "none" | "" => return Ok(Self::NONE),
            _ => {}
        }
        let mut mask = Self::NONE;
        for part in spec.split(',') {
            let part = part.trim();
            match Self::NAMES.iter().find(|(name, _)| *name == part) {
                Some((_, bit)) => mask = mask.union(*bit),
                None => {
                    return Err(format!(
                        "unknown event category {part:?} (expected one of: all, none, {})",
                        Self::NAMES.map(|(n, _)| n).join(", ")
                    ))
                }
            }
        }
        Ok(mask)
    }
}

/// The typed payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A host request completed.
    HostIo {
        /// `"read"`, `"write"` or `"trim"`.
        op: &'static str,
        /// First logical page of the request.
        lpn: u64,
        /// Host-visible latency in µs.
        latency_us: f64,
    },
    /// One WL program through the ISPP engine.
    IsppProgram {
        /// Chip index.
        chip: u32,
        /// Whether this WL was the h-layer leader (full-verify monitor).
        leader: bool,
        /// Program pulses executed.
        pulses: u32,
        /// Verify steps executed (skipped verifies = pulses − verifies).
        verifies: u32,
        /// Window shrink beyond the safe MaxLoop margin, in loops.
        margin_excess_loops: u32,
        /// NAND program latency in µs.
        latency_us: f64,
        /// Whether the program aborted (injected fault).
        aborted: bool,
    },
    /// A page read that needed the retry chain.
    ReadRetry {
        /// Chip index.
        chip: u32,
        /// Logical page read.
        lpn: u64,
        /// Retries performed before decoding.
        retries: u32,
        /// Injected fault kind recovered from, if any.
        fault: Option<&'static str>,
        /// Whether the starting ΔV_Ref came from the cross-block cluster
        /// (ORT miss seeded by the h-layer aggregate).
        seeded: bool,
        /// Whether the retry chain terminated early (seeded-chain guard
        /// or the `--retry-opt` early-termination scan).
        early_term: bool,
    },
    /// GC selected a victim block.
    GcVictim {
        /// Chip index.
        chip: u32,
        /// Victim block id.
        block: u32,
        /// Valid WLs migrated off the victim.
        moved_wls: u32,
        /// Whether the wear-aware selector was used.
        wear_aware: bool,
    },
    /// One background maintenance unit ran.
    Maint {
        /// Chip index.
        chip: u32,
        /// `"scrub"`, `"wear_level"` or `"remonitor"`.
        service: &'static str,
        /// Pages moved by this unit.
        page_moves: u64,
    },
    /// An L2P checkpoint was flushed to the metadata region.
    Checkpoint {
        /// Metadata pages programmed.
        pages: u32,
        /// Encoded checkpoint size in bytes.
        bytes: u64,
        /// Latency charged to the triggering write, in µs.
        latency_us: f64,
    },
    /// A sudden-power-off phase boundary.
    Spo {
        /// `"cut"`, `"recovery_begin"` or `"recovery_done"`.
        phase: &'static str,
        /// Phase detail: completed ops at the cut, or replayed WLs.
        detail: u64,
    },
    /// An OPM transition on one (chip, h-layer).
    Opm {
        /// Chip index.
        chip: u32,
        /// h-layer index.
        layer: u32,
        /// `"monitor"` (leader promoted/recorded) or `"demote"`
        /// (§4.1.4 safety-check demotion).
        action: &'static str,
    },
    /// A host front-end queue transition: an arrival was shed by
    /// admission control (submission queue at its depth bound).
    HostQueue {
        /// Submission queue index.
        queue: u32,
        /// Tenant the arrival belonged to.
        tenant: u32,
        /// `"shed"` (the only transition traced today; backpressure
        /// accounting lives in the metric registry).
        action: &'static str,
        /// Queue occupancy at the instant of the transition.
        depth: u32,
    },
    /// End-of-run SLO attainment for one tenant (emitted for the
    /// bounded-cardinality reporting set only).
    TenantSlo {
        /// Tenant id.
        tenant: u32,
        /// Requests completed for this tenant.
        completed: u64,
        /// Arrivals shed for this tenant.
        shed: u64,
        /// p99 read latency in µs (0 when the tenant issued no reads).
        read_p99_us: f64,
        /// p99 write latency in µs (0 when the tenant issued no writes).
        write_p99_us: f64,
        /// SLO violations counted against this tenant.
        violations: u64,
    },
    /// A whole-shard failure boundary (injection, detection at the
    /// barrier, or rebuild-complete restoration of full redundancy).
    ShardFail {
        /// Array index of the failed shard.
        failed: u32,
        /// `"inject"`, `"detect"` or `"restored"`.
        phase: &'static str,
        /// Phase detail: durable pages at stake (detect), rebuilt
        /// pages (restored), or the failure time in µs (inject).
        detail: u64,
    },
    /// A degraded-mode read: a lost page served by XOR-reconstructing
    /// it from the surviving shards' pages of the same stripe row.
    DegradedRead {
        /// Global data LPN reconstructed.
        lpn: u64,
        /// Surviving fragments read to rebuild it (S − 1).
        fragments: u32,
    },
    /// One bounded background rebuild unit ran against the spare.
    RebuildUnit {
        /// Spare shard serving as rebuild target.
        spare: u32,
        /// `"read"` (survivor fragment reads) or `"write"` (spare
        /// reconstruction writes).
        action: &'static str,
        /// Pages moved by this unit.
        pages: u64,
    },
    /// A lifetime-campaign epoch barrier: virtual device age was
    /// fast-forwarded between workload phases.
    EpochAdvance {
        /// Workload epoch about to start (1-based; epoch 0 is the
        /// fresh baseline and carries no barrier).
        epoch: u32,
        /// Total P/E cycles added across the device at this barrier.
        pe_add: u64,
        /// Nominal retention months added at this barrier (early
        /// retention loss makes early barriers carry more).
        retention_add_months: f64,
        /// Blocks whose age advanced.
        blocks: u64,
    },
    /// A kvsim maintenance action: a memtable flush or an LSM
    /// compaction moved SST data on the device.
    KvMaint {
        /// Measured application op ordinal the action landed on
        /// (0 during the bulk-load phase).
        op_index: u64,
        /// `"flush"` or `"compact"`.
        action: &'static str,
        /// Output level the run(s) were written into.
        level: u32,
        /// Pages read from input runs.
        pages_in: u64,
        /// Pages written to output runs.
        pages_out: u64,
    },
}

impl EventKind {
    /// The mask category this event belongs to.
    pub fn category(&self) -> EventMask {
        match self {
            EventKind::HostIo { .. } => EventMask::HOST_IO,
            EventKind::IsppProgram { .. } => EventMask::ISPP,
            EventKind::ReadRetry { .. } => EventMask::READ_RETRY,
            EventKind::GcVictim { .. } => EventMask::GC,
            EventKind::Maint { .. } => EventMask::MAINT,
            EventKind::Checkpoint { .. } => EventMask::CKPT,
            EventKind::Spo { .. } => EventMask::SPO,
            EventKind::Opm { .. } => EventMask::OPM,
            EventKind::HostQueue { .. } => EventMask::HOSTQ,
            EventKind::TenantSlo { .. } => EventMask::SLO,
            EventKind::ShardFail { .. } | EventKind::DegradedRead { .. } => EventMask::DEGRADED,
            EventKind::RebuildUnit { .. } => EventMask::REBUILD,
            EventKind::EpochAdvance { .. } => EventMask::AGING,
            EventKind::KvMaint { .. } => EventMask::KV,
        }
    }
}

/// One trace record: a virtual timestamp, its origin shard, a
/// per-collector sequence number, and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event in µs.
    pub t_us: f64,
    /// Shard the event originated on (0 for a single device).
    pub shard: u32,
    /// Per-collector sequence number (tie-break within a timestamp).
    pub seq: u64,
    /// Typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Serializes the event as one NDJSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"t_us\":{},\"shard\":{},\"seq\":{},\"kind\":",
            fmt_num(self.t_us),
            self.shard,
            self.seq
        );
        match &self.kind {
            EventKind::HostIo {
                op,
                lpn,
                latency_us,
            } => {
                let _ = write!(
                    s,
                    "\"host_io\",\"op\":\"{op}\",\"lpn\":{lpn},\"latency_us\":{}",
                    fmt_num(*latency_us)
                );
            }
            EventKind::IsppProgram {
                chip,
                leader,
                pulses,
                verifies,
                margin_excess_loops,
                latency_us,
                aborted,
            } => {
                let _ = write!(
                    s,
                    "\"ispp_program\",\"chip\":{chip},\"leader\":{leader},\"pulses\":{pulses},\
                     \"verifies\":{verifies},\"margin_excess_loops\":{margin_excess_loops},\
                     \"latency_us\":{},\"aborted\":{aborted}",
                    fmt_num(*latency_us)
                );
            }
            EventKind::ReadRetry {
                chip,
                lpn,
                retries,
                fault,
                seeded,
                early_term,
            } => {
                let _ = write!(
                    s,
                    "\"read_retry\",\"chip\":{chip},\"lpn\":{lpn},\"retries\":{retries},\"fault\":"
                );
                match fault {
                    Some(f) => {
                        let _ = write!(s, "\"{f}\"");
                    }
                    None => s.push_str("null"),
                }
                let _ = write!(s, ",\"seeded\":{seeded},\"early_term\":{early_term}");
            }
            EventKind::GcVictim {
                chip,
                block,
                moved_wls,
                wear_aware,
            } => {
                let _ = write!(
                    s,
                    "\"gc_victim\",\"chip\":{chip},\"block\":{block},\"moved_wls\":{moved_wls},\"wear_aware\":{wear_aware}"
                );
            }
            EventKind::Maint {
                chip,
                service,
                page_moves,
            } => {
                let _ = write!(
                    s,
                    "\"maint\",\"chip\":{chip},\"service\":\"{service}\",\"page_moves\":{page_moves}"
                );
            }
            EventKind::Checkpoint {
                pages,
                bytes,
                latency_us,
            } => {
                let _ = write!(
                    s,
                    "\"checkpoint\",\"pages\":{pages},\"bytes\":{bytes},\"latency_us\":{}",
                    fmt_num(*latency_us)
                );
            }
            EventKind::Spo { phase, detail } => {
                let _ = write!(s, "\"spo\",\"phase\":\"{phase}\",\"detail\":{detail}");
            }
            EventKind::Opm {
                chip,
                layer,
                action,
            } => {
                let _ = write!(
                    s,
                    "\"opm\",\"chip\":{chip},\"layer\":{layer},\"action\":\"{action}\""
                );
            }
            EventKind::HostQueue {
                queue,
                tenant,
                action,
                depth,
            } => {
                let _ = write!(
                    s,
                    "\"host_queue\",\"queue\":{queue},\"tenant\":{tenant},\"action\":\"{action}\",\"depth\":{depth}"
                );
            }
            EventKind::TenantSlo {
                tenant,
                completed,
                shed,
                read_p99_us,
                write_p99_us,
                violations,
            } => {
                let _ = write!(
                    s,
                    "\"tenant_slo\",\"tenant\":{tenant},\"completed\":{completed},\"shed\":{shed},\
                     \"read_p99_us\":{},\"write_p99_us\":{},\"violations\":{violations}",
                    fmt_num(*read_p99_us),
                    fmt_num(*write_p99_us)
                );
            }
            EventKind::ShardFail {
                failed,
                phase,
                detail,
            } => {
                let _ = write!(
                    s,
                    "\"shard_fail\",\"failed\":{failed},\"phase\":\"{phase}\",\"detail\":{detail}"
                );
            }
            EventKind::DegradedRead { lpn, fragments } => {
                let _ = write!(
                    s,
                    "\"degraded_read\",\"lpn\":{lpn},\"fragments\":{fragments}"
                );
            }
            EventKind::RebuildUnit {
                spare,
                action,
                pages,
            } => {
                let _ = write!(
                    s,
                    "\"rebuild_unit\",\"spare\":{spare},\"action\":\"{action}\",\"pages\":{pages}"
                );
            }
            EventKind::EpochAdvance {
                epoch,
                pe_add,
                retention_add_months,
                blocks,
            } => {
                let _ = write!(
                    s,
                    "\"epoch_advance\",\"epoch\":{epoch},\"pe_add\":{pe_add},\
                     \"retention_add_months\":{},\"blocks\":{blocks}",
                    fmt_num(*retention_add_months)
                );
            }
            EventKind::KvMaint {
                op_index,
                action,
                level,
                pages_in,
                pages_out,
            } => {
                let _ = write!(
                    s,
                    "\"kv_maint\",\"op_index\":{op_index},\"action\":\"{action}\",\
                     \"level\":{level},\"pages_in\":{pages_in},\"pages_out\":{pages_out}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// Serializes a slice of events as NDJSON (one line each, `\n`-ended).
pub fn events_to_ndjson(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128);
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// A mask-gated event sink owned by one component (the simulator or the
/// FTL of one shard). With an empty mask the collector is inert: no
/// event is ever pushed and the buffer never allocates.
#[derive(Debug, Default)]
pub struct Collector {
    mask: EventMask,
    shard: u32,
    seq: u64,
    events: Vec<TraceEvent>,
}

impl Collector {
    /// The inert collector (records nothing, never allocates).
    pub fn disabled() -> Self {
        Collector::default()
    }

    /// A collector recording the categories in `mask`, tagging every
    /// event with `shard`.
    pub fn enabled(mask: EventMask, shard: u32) -> Self {
        Collector {
            mask,
            shard,
            seq: 0,
            events: Vec::new(),
        }
    }

    /// Whether events of category `cat` would be recorded. Call sites
    /// use this to skip payload construction entirely when tracing is
    /// off — the disabled path must cost one mask test and nothing else.
    #[inline]
    pub fn wants(&self, cat: EventMask) -> bool {
        self.mask.contains(cat) && !cat.is_empty()
    }

    /// Records one event (dropped unless its category is enabled).
    #[inline]
    pub fn emit(&mut self, t_us: f64, kind: EventKind) {
        if !self.wants(kind.category()) {
            return;
        }
        self.events.push(TraceEvent {
            t_us,
            shard: self.shard,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the buffered events (the collector stays enabled and its
    /// sequence numbering continues).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Discards buffered events and restarts sequence numbering, keeping
    /// the mask and shard tag — called at the start of each run.
    pub fn reset(&mut self) {
        self.events = Vec::new();
        self.seq = 0;
    }
}

/// Stable two-way merge of two time-ordered event streams. On timestamp
/// ties the first stream wins — callers pass the device/simulator stream
/// first and the FTL stream second, so the tie-break is by source rank
/// and then by each stream's own sequence numbers: fully deterministic.
pub fn merge_streams(a: Vec<TraceEvent>, b: Vec<TraceEvent>) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia].t_us <= b[ib].t_us {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parsing_round_trips_names() {
        assert_eq!(EventMask::parse("all").unwrap(), EventMask::ALL);
        assert_eq!(EventMask::parse("none").unwrap(), EventMask::NONE);
        let m = EventMask::parse("host,gc,ckpt").unwrap();
        assert!(m.contains(EventMask::HOST_IO));
        assert!(m.contains(EventMask::GC));
        assert!(m.contains(EventMask::CKPT));
        assert!(!m.contains(EventMask::ISPP));
        assert!(EventMask::parse("bogus").is_err());
    }

    #[test]
    fn disabled_collector_never_allocates() {
        let mut c = Collector::disabled();
        for i in 0..1000 {
            c.emit(
                i as f64,
                EventKind::HostIo {
                    op: "read",
                    lpn: i,
                    latency_us: 61.0,
                },
            );
        }
        assert!(c.is_empty());
        assert_eq!(c.events.capacity(), 0, "disabled path must not allocate");
    }

    #[test]
    fn mask_filters_categories() {
        let mut c = Collector::enabled(EventMask::GC, 0);
        c.emit(
            1.0,
            EventKind::HostIo {
                op: "read",
                lpn: 0,
                latency_us: 1.0,
            },
        );
        c.emit(
            2.0,
            EventKind::GcVictim {
                chip: 0,
                block: 3,
                moved_wls: 7,
                wear_aware: false,
            },
        );
        assert_eq!(c.len(), 1);
        assert!(matches!(c.take()[0].kind, EventKind::GcVictim { .. }));
    }

    #[test]
    fn merge_is_time_ordered_with_first_stream_winning_ties() {
        let ev = |t: f64, shard: u32, seq: u64| TraceEvent {
            t_us: t,
            shard,
            seq,
            kind: EventKind::Spo {
                phase: "cut",
                detail: 0,
            },
        };
        let a = vec![ev(1.0, 0, 0), ev(5.0, 0, 1)];
        let b = vec![ev(1.0, 1, 0), ev(2.0, 1, 1)];
        let merged = merge_streams(a, b);
        let order: Vec<(f64, u32)> = merged.iter().map(|e| (e.t_us, e.shard)).collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (2.0, 1), (5.0, 0)]);
    }

    #[test]
    fn resilience_categories_parse_and_serialize() {
        let m = EventMask::parse("degraded,rebuild").unwrap();
        assert!(m.contains(EventMask::DEGRADED));
        assert!(m.contains(EventMask::REBUILD));
        assert!(EventMask::ALL.contains(m));
        let mut c = Collector::enabled(m, 3);
        c.emit(
            10.0,
            EventKind::ShardFail {
                failed: 1,
                phase: "detect",
                detail: 512,
            },
        );
        c.emit(
            11.0,
            EventKind::DegradedRead {
                lpn: 42,
                fragments: 3,
            },
        );
        c.emit(
            12.0,
            EventKind::RebuildUnit {
                spare: 4,
                action: "write",
                pages: 64,
            },
        );
        let lines = events_to_ndjson(&c.take());
        assert!(lines.contains("\"kind\":\"shard_fail\",\"failed\":1,\"phase\":\"detect\""));
        assert!(lines.contains("\"kind\":\"degraded_read\",\"lpn\":42,\"fragments\":3"));
        assert!(lines
            .contains("\"kind\":\"rebuild_unit\",\"spare\":4,\"action\":\"write\",\"pages\":64"));
    }

    #[test]
    fn aging_category_parses_and_serializes() {
        let m = EventMask::parse("aging").unwrap();
        assert!(m.contains(EventMask::AGING));
        assert!(EventMask::ALL.contains(m));
        assert!(!EventMask::parse("maint,ckpt").unwrap().contains(m));
        let mut c = Collector::enabled(m, 1);
        c.emit(
            0.0,
            EventKind::EpochAdvance {
                epoch: 2,
                pe_add: 48_000,
                retention_add_months: 2.25,
                blocks: 96,
            },
        );
        c.emit(
            0.0,
            EventKind::Maint {
                chip: 0,
                service: "scrub",
                page_moves: 4,
            },
        );
        assert_eq!(c.len(), 1, "mask must gate other categories out");
        let lines = events_to_ndjson(&c.take());
        assert!(lines.contains(
            "\"kind\":\"epoch_advance\",\"epoch\":2,\"pe_add\":48000,\
             \"retention_add_months\":2.25,\"blocks\":96"
        ));
    }

    #[test]
    fn json_lines_carry_the_envelope_keys() {
        let ev = TraceEvent {
            t_us: 12.5,
            shard: 2,
            seq: 7,
            kind: EventKind::Checkpoint {
                pages: 3,
                bytes: 4096,
                latency_us: 2109.0,
            },
        };
        let line = ev.to_json();
        assert!(line.starts_with("{\"t_us\":12.5,\"shard\":2,\"seq\":7,"));
        assert!(line.contains("\"kind\":\"checkpoint\""));
        assert!(line.ends_with('}'));
    }
}
