//! # telemetry — deterministic instrumentation for the cubeFTL stack
//!
//! Three building blocks, shared by every crate in the workspace:
//!
//! * a **structured event trace** ([`TraceEvent`] / [`Collector`]):
//!   typed, virtual-timestamped records of the interesting things a run
//!   does — host I/O completions, ISPP programs, read-retry chains, GC
//!   victim selection and migration, maintenance units, checkpoint
//!   writes, sudden-power-off phases, OPM monitor/demote transitions —
//!   gated by a per-category [`EventMask`] and serialized to NDJSON;
//! * a **metric registry** ([`MetricRegistry`]): named counters, gauges
//!   and log-bucketed histograms that `nand3d`, `ftl`, `ssdsim` and
//!   `ssdarray` register their end-of-run state into, exported as
//!   NDJSON (the legacy `SimReport`/`FtlStats` structs stay as
//!   compatibility views over the same numbers);
//! * a **time-series sampler** ([`Series`] / [`SampleRow`]): periodic
//!   snapshots on virtual-time boundaries (IOPS, windowed tPROG
//!   mean/p99, retry rate, queue depth, free blocks, write
//!   amplification) exported as CSV or NDJSON.
//!
//! ## Determinism rules
//!
//! Everything here is deterministic by construction, so telemetry files
//! from double runs — at any worker-thread count — are byte-identical:
//!
//! * **Virtual time only.** Every timestamp is simulated µs; wall-clock
//!   never enters any record.
//! * **Ordered merge.** Per-source event streams are merged with a
//!   stable two-way merge ([`merge_streams`]); multi-shard streams are
//!   concatenated strictly in shard order, never completion order.
//! * **Zero-cost when disabled.** A [`Collector`] with an empty mask
//!   never allocates; call sites guard payload construction behind
//!   [`Collector::wants`].
//! * **No floating-point re-derivation.** Serialized numbers use Rust's
//!   shortest-roundtrip `f64` formatting, which is platform- and
//!   run-stable.

pub mod event;
pub mod hist;
pub mod json;
pub mod registry;
pub mod series;

pub use event::{events_to_ndjson, merge_streams, Collector, EventKind, EventMask, TraceEvent};
pub use hist::LogHistogram;
pub use json::{validate_ndjson, validate_trace_ndjson};
pub use registry::{MetricRegistry, MetricValue};
pub use series::{SampleRow, Series};

/// Formats an `f64` for serialization: shortest-roundtrip decimal form
/// (Rust's `Display`), with non-finite values clamped to `0` so the
/// output is always a valid JSON/CSV number.
pub fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}
