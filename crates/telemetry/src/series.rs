//! Virtual-time series: periodic registry snapshots as CSV or NDJSON.
//!
//! The simulator appends one [`SampleRow`] every `--sample-interval-us`
//! of *virtual* time (sampling is driven by event-loop time-threshold
//! crossings, so the rows are independent of how the run is sliced into
//! steps and of the worker-thread count). Windowed columns (IOPS, tPROG
//! mean/p99, retry rate) cover the interval since the previous row;
//! cumulative/instantaneous columns (completed, queue depth, free
//! blocks, WA) are as of the sample instant.

use crate::fmt_num;
use std::fmt::Write as _;

/// One sample of the time series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleRow {
    /// Virtual sample instant in µs.
    pub t_us: f64,
    /// Cumulative host requests completed.
    pub completed: u64,
    /// Window throughput in IOPS.
    pub iops: f64,
    /// Mean NAND program latency of host WL programs in the window, µs.
    pub tprog_mean_us: f64,
    /// p99 NAND program latency of host WL programs in the window, µs.
    pub tprog_p99_us: f64,
    /// Read retries per NAND read in the window.
    pub retry_rate: f64,
    /// Operations queued across all chips at the sample instant.
    pub queue_depth: u64,
    /// Free blocks across all chips at the sample instant.
    pub free_blocks: u64,
    /// Cumulative total write amplification (0 until the first host WL).
    pub wa_total: f64,
}

/// CSV column order shared by the writer and its header.
const COLUMNS: [&str; 9] = [
    "t_us",
    "completed",
    "iops",
    "tprog_mean_us",
    "tprog_p99_us",
    "retry_rate",
    "queue_depth",
    "free_blocks",
    "wa_total",
];

/// A complete sampled series for one run (or one shard).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Sampling interval in virtual µs.
    pub interval_us: f64,
    /// Rows in time order. For a multi-shard array, shard series are
    /// concatenated in shard order with a `shard` column in the export.
    pub rows: Vec<(u32, SampleRow)>,
}

impl Series {
    /// An empty series with the given interval.
    pub fn new(interval_us: f64) -> Self {
        Series {
            interval_us,
            rows: Vec::new(),
        }
    }

    /// Appends a row for `shard`.
    pub fn push(&mut self, shard: u32, row: SampleRow) {
        self.rows.push((shard, row));
    }

    /// Appends another series (used for shard-order fan-in).
    pub fn extend(&mut self, other: &Series) {
        self.rows.extend_from_slice(&other.rows);
    }

    /// Exports as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.rows.len() * 64);
        out.push_str("shard,");
        out.push_str(&COLUMNS.join(","));
        out.push('\n');
        for (shard, r) in &self.rows {
            let _ = writeln!(
                out,
                "{shard},{},{},{},{},{},{},{},{},{}",
                fmt_num(r.t_us),
                r.completed,
                fmt_num(r.iops),
                fmt_num(r.tprog_mean_us),
                fmt_num(r.tprog_p99_us),
                fmt_num(r.retry_rate),
                r.queue_depth,
                r.free_blocks,
                fmt_num(r.wa_total)
            );
        }
        out
    }

    /// Exports as NDJSON, one `{"type":"sample",...}` object per row.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 160);
        for (shard, r) in &self.rows {
            let _ = writeln!(
                out,
                "{{\"type\":\"sample\",\"shard\":{shard},\"t_us\":{},\"completed\":{},\
                 \"iops\":{},\"tprog_mean_us\":{},\"tprog_p99_us\":{},\"retry_rate\":{},\
                 \"queue_depth\":{},\"free_blocks\":{},\"wa_total\":{}}}",
                fmt_num(r.t_us),
                r.completed,
                fmt_num(r.iops),
                fmt_num(r.tprog_mean_us),
                fmt_num(r.tprog_p99_us),
                fmt_num(r.retry_rate),
                r.queue_depth,
                r.free_blocks,
                fmt_num(r.wa_total)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: f64) -> SampleRow {
        SampleRow {
            t_us: t,
            completed: 10,
            iops: 1000.0,
            tprog_mean_us: 586.5,
            tprog_p99_us: 703.0,
            retry_rate: 0.25,
            queue_depth: 3,
            free_blocks: 40,
            wa_total: 1.5,
        }
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let mut s = Series::new(100.0);
        s.push(0, row(100.0));
        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let data = lines.next().unwrap();
        assert_eq!(header.split(',').count(), data.split(',').count());
        assert!(header.starts_with("shard,t_us,"));
        assert!(data.starts_with("0,100,10,1000,"));
    }

    #[test]
    fn shard_fan_in_concatenates_in_call_order() {
        let mut merged = Series::new(50.0);
        let mut s0 = Series::new(50.0);
        s0.push(0, row(50.0));
        let mut s1 = Series::new(50.0);
        s1.push(1, row(50.0));
        merged.extend(&s0);
        merged.extend(&s1);
        let shards: Vec<u32> = merged.rows.iter().map(|(s, _)| *s).collect();
        assert_eq!(shards, vec![0, 1]);
    }

    #[test]
    fn ndjson_rows_are_self_describing() {
        let mut s = Series::new(10.0);
        s.push(2, row(20.0));
        let line = s.to_ndjson();
        assert!(line.starts_with("{\"type\":\"sample\",\"shard\":2,\"t_us\":20,"));
        assert!(line.trim_end().ends_with('}'));
    }
}
