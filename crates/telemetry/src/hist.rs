//! Deterministic log-bucketed histogram with bounded memory.
//!
//! Values are binned by their IEEE-754 bit pattern: the bucket index is
//! the exponent plus the top [`LogHistogram::SUB_BUCKET_BITS`] mantissa
//! bits, giving 64 sub-buckets per octave. Bucket boundaries are exact
//! powers of `2^(1/64)` steps, so the **relative resolution is
//! `2^-6 ≈ 1.56%`**: any reported percentile is the *lower bound* of the
//! bucket holding the rank, i.e. it under-estimates the true
//! nearest-rank value by at most 1.6% (count, sum, mean, min and max are
//! exact). Bucketing uses only integer bit manipulation — no `log2`, no
//! libm — so it is bit-stable across platforms.
//!
//! Storage is a `BTreeMap` keyed by bucket index: iteration order is
//! value order (deterministic), and memory is bounded by the number of
//! *distinct* buckets touched (a few hundred for µs-scale latencies),
//! not the number of samples.

use std::collections::BTreeMap;

/// A log-bucketed histogram of non-negative `f64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Sparse bucket counts, keyed by [`LogHistogram::bucket_index`].
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
    /// Exact extrema; meaningful only when `count > 0`.
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// Mantissa bits kept per bucket: 2^6 = 64 sub-buckets per octave.
    pub const SUB_BUCKET_BITS: u32 = 6;

    /// Worst-case relative error of a percentile: one bucket width.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Bucket index of `v`: 0 for non-positive (or non-finite) values,
    /// otherwise exponent + top mantissa bits, offset by one.
    fn bucket_index(v: f64) -> u32 {
        if v > 0.0 && v.is_finite() {
            (v.to_bits() >> (52 - Self::SUB_BUCKET_BITS)) as u32 + 1
        } else {
            0
        }
    }

    /// Lower bound of the bucket `idx` (its percentile representative).
    fn bucket_lower_bound(idx: u32) -> f64 {
        if idx == 0 {
            0.0
        } else {
            f64::from_bits(u64::from(idx - 1) << (52 - Self::SUB_BUCKET_BITS))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Merges another histogram into this one.
    pub fn absorb(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded samples (exact).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (exact; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (exact; 0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank percentile, reported as the lower bound of the
    /// bucket holding the rank (≤ 1.6% below the true sample; clamped
    /// into `[min, max]`). `p = 100` returns the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics when the histogram is empty or `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(self.count > 0, "percentile of an empty histogram");
        assert!(p > 0.0 && p <= 100.0, "percentile {p} outside (0, 100]");
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::bucket_lower_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fraction of samples at or below each point, evaluated at bucket
    /// granularity: a point inside a bucket counts the whole bucket
    /// (over-estimates by at most one bucket's population). Monotone in
    /// the query point by construction.
    pub fn cdf(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&p| {
                let below: u64 = self
                    .buckets
                    .iter()
                    .take_while(|&(&idx, _)| Self::bucket_lower_bound(idx) <= p)
                    .map(|(_, &n)| n)
                    .sum();
                let frac = if self.count == 0 {
                    0.0
                } else {
                    below as f64 / self.count as f64
                };
                (p, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_aggregates_survive_bucketing() {
        let mut h = LogHistogram::new();
        for v in [5.0, 100.0, 250.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert!((h.mean() - 338.75).abs() < 1e-9);
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.percentile(100.0), 1000.0);
    }

    #[test]
    fn percentile_under_estimates_within_one_bucket() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = (p / 100.0 * 1000.0_f64).ceil();
            let approx = h.percentile(p);
            assert!(approx <= exact + 1e-9, "p{p}: {approx} > {exact}");
            assert!(
                approx >= exact * (1.0 - LogHistogram::MAX_RELATIVE_ERROR) - 1e-9,
                "p{p}: {approx} below error bound of {exact}"
            );
        }
    }

    #[test]
    fn absorb_matches_recording_directly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500 {
            let v = (i as f64) * 1.7 + 0.3;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        a.absorb(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut h = LogHistogram::new();
        for i in 0..300 {
            h.record((i % 37) as f64 + 0.5);
        }
        let pts: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let cdf = h.cdf(&pts);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_fall_into_the_floor_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(2.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.percentile(50.0), 0.0_f64.clamp(h.min(), h.max()));
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn memory_is_bounded_by_distinct_buckets() {
        let mut h = LogHistogram::new();
        for i in 0..1_000_000u64 {
            h.record(50.0 + (i % 1000) as f64);
        }
        assert_eq!(h.len(), 1_000_000);
        assert!(h.buckets.len() < 700, "got {} buckets", h.buckets.len());
    }
}
