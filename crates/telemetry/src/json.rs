//! A minimal, dependency-free JSON syntax validator.
//!
//! The workspace's vendored `serde` is a deterministic stub (no real
//! serialization), so the telemetry writers emit NDJSON by hand. This
//! module is the matching safety net: a recursive-descent checker the
//! schema tests (and the CI telemetry smoke job) run over every emitted
//! file to guarantee the hand-written output is well-formed JSON with
//! the expected envelope keys.

/// Validates NDJSON text: every non-empty line must be one well-formed
/// JSON object. Returns the number of object lines.
pub fn validate_ndjson(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let keys = parse_object_keys(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if keys.is_empty() {
            return Err(format!("line {}: empty object", i + 1));
        }
        n += 1;
    }
    Ok(n)
}

/// Validates a trace NDJSON file: well-formed objects that all carry the
/// `t_us`/`shard`/`seq`/`kind` envelope keys. Returns the event count.
pub fn validate_trace_ndjson(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let keys = parse_object_keys(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        for required in ["t_us", "shard", "seq", "kind"] {
            if !keys.iter().any(|k| k == required) {
                return Err(format!("line {}: missing envelope key {required:?}", i + 1));
            }
        }
        n += 1;
    }
    Ok(n)
}

/// Parses one JSON object and returns its top-level keys.
fn parse_object_keys(s: &str) -> Result<Vec<String>, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(keys)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    /// `{ "key": value, ... }` — returns the keys.
    fn object(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object()?;
                Ok(())
            }
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at offset {}",
                                            self.pos
                                        ))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                Some(c) if c >= 0x20 => {
                    // Multi-byte UTF-8 sequences pass through byte-wise;
                    // only the key spelling matters to callers and keys
                    // here are ASCII.
                    out.push(c as char);
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at offset {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at offset {start}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_objects() {
        let text = "{\"a\":1,\"b\":[1,2.5,-3e4],\"c\":{\"d\":null},\"e\":\"x\"}\n\n{\"f\":true}\n";
        assert_eq!(validate_ndjson(text), Ok(2));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate_ndjson("{\"a\":}").is_err());
        assert!(validate_ndjson("{\"a\":1").is_err());
        assert!(validate_ndjson("{\"a\":1} extra").is_err());
        assert!(validate_ndjson("[1,2]").is_err());
        assert!(validate_ndjson("{\"a\":01e}").is_err());
    }

    #[test]
    fn trace_validation_requires_envelope_keys() {
        let good = "{\"t_us\":1.5,\"shard\":0,\"seq\":0,\"kind\":\"spo\",\"phase\":\"cut\",\"detail\":3}\n";
        assert_eq!(validate_trace_ndjson(good), Ok(1));
        let bad = "{\"t_us\":1.5,\"shard\":0,\"kind\":\"spo\"}\n";
        assert!(validate_trace_ndjson(bad).unwrap_err().contains("seq"));
    }
}
