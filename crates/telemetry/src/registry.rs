//! Named metric registry: counters, gauges, log-bucketed histograms.
//!
//! Components register their end-of-run state under dotted names
//! (`ssd.reads`, `ftl.gc_page_moves`, `chip0.max_queue_depth`, ...);
//! the registry exports everything as NDJSON, sorted by metric name so
//! the output is independent of registration order.

use crate::{fmt_num, LogHistogram};
use std::fmt::Write as _;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic event count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
    /// A full latency/size distribution.
    Histogram(LogHistogram),
}

/// An insertion-ordered collection of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    entries: Vec<(String, MetricValue)>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.entries
            .push((name.to_owned(), MetricValue::Counter(value)));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.entries
            .push((name.to_owned(), MetricValue::Gauge(value)));
    }

    /// Registers a histogram (cloned; the caller keeps its copy).
    pub fn histogram(&mut self, name: &str, hist: &LogHistogram) {
        self.entries
            .push((name.to_owned(), MetricValue::Histogram(hist.clone())));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The registered `(name, value)` pairs in registration order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Exports every metric as NDJSON, one object per line, sorted by
    /// metric name. Histograms export their exact aggregates plus
    /// bucketed p50/p99 (see [`LogHistogram::percentile`]).
    pub fn to_ndjson(&self) -> String {
        let mut sorted: Vec<&(String, MetricValue)> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::with_capacity(sorted.len() * 64);
        for (name, value) in sorted {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}"
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"gauge\",\"value\":{}}}",
                        fmt_num(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let (p50, p99) = if h.is_empty() {
                        (0.0, 0.0)
                    } else {
                        (h.percentile(50.0), h.percentile(99.0))
                    };
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\
                         \"mean\":{},\"p50\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
                        h.len(),
                        fmt_num(h.mean()),
                        fmt_num(p50),
                        fmt_num(p99),
                        fmt_num(h.min()),
                        fmt_num(h.max())
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_sorted_by_name_not_registration_order() {
        let mut reg = MetricRegistry::new();
        reg.counter("z.last", 1);
        reg.gauge("a.first", 2.5);
        let out = reg.to_ndjson();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("a.first"));
        assert!(lines[1].contains("z.last"));
    }

    #[test]
    fn histogram_line_carries_exact_aggregates() {
        let mut h = LogHistogram::new();
        h.record(10.0);
        h.record(20.0);
        let mut reg = MetricRegistry::new();
        reg.histogram("lat", &h);
        let out = reg.to_ndjson();
        assert!(out.contains("\"count\":2"));
        assert!(out.contains("\"mean\":15"));
        assert!(out.contains("\"max\":20"));
    }

    #[test]
    fn lookup_by_name() {
        let mut reg = MetricRegistry::new();
        reg.counter("x", 7);
        assert_eq!(reg.get("x"), Some(&MetricValue::Counter(7)));
        assert_eq!(reg.get("y"), None);
    }
}
