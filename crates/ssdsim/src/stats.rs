//! Latency recording, percentiles and CDFs.

use serde::{Deserialize, Serialize};
use telemetry::LogHistogram;

/// Records a stream of latencies (µs) and answers distribution queries
/// (mean, percentiles, CDF series) — the raw material for the latency
/// CDFs of Fig. 18.
///
/// Backed by a deterministic log-bucketed histogram
/// ([`telemetry::LogHistogram`]) rather than a raw sample buffer, so
/// memory is bounded by the number of distinct latency buckets touched
/// — million-op runs cost a few hundred map entries, not a `Vec` of
/// every sample. The trade: percentiles and CDF points are reported at
/// bucket granularity (the lower bound of the bucket holding the rank),
/// under-estimating the true nearest-rank sample by at most
/// [`LogHistogram::MAX_RELATIVE_ERROR`] (1.6%); count, mean and max
/// stay exact.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    hist: LogHistogram,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_us: f64) {
        debug_assert!(latency_us >= 0.0, "negative latency");
        self.hist.record(latency_us);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.hist.len() as usize
    }

    /// The underlying histogram (for metric registration).
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Merges every bucket of `other`. The array front-end merges
    /// per-shard recorders this way, always in shard order, so the
    /// merged distribution is independent of thread interleaving.
    pub fn absorb(&mut self, other: &LatencyRecorder) {
        self.hist.absorb(&other.hist);
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Mean latency (exact), or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// The `p`-th percentile (0 < p ≤ 100) by nearest-rank at bucket
    /// granularity (≤ 1.6% below the true sample; `p = 100` is the
    /// exact maximum), or 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.hist.is_empty() {
            return 0.0;
        }
        self.hist.percentile(p)
    }

    /// A CDF as `points` evenly spaced `(latency_us, cumulative
    /// fraction)` pairs.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.hist.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                (self.hist.percentile(frac * 100.0), frac)
            })
            .collect()
    }

    /// Maximum sample (exact), or 0 when empty.
    pub fn max(&self) -> f64 {
        self.hist.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles_within_bucket_resolution() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(f64::from(i));
        }
        assert_eq!(r.len(), 100);
        assert!((r.mean() - 50.5).abs() < 1e-9, "mean stays exact");
        for (p, exact) in [(50.0, 50.0), (90.0, 90.0)] {
            let got = r.percentile(p);
            assert!(got <= exact + 1e-9, "p{p}: {got} above exact {exact}");
            assert!(
                got >= exact * (1.0 - LogHistogram::MAX_RELATIVE_ERROR) - 1e-9,
                "p{p}: {got} below resolution bound of {exact}"
            );
        }
        assert_eq!(r.percentile(100.0), 100.0, "p100 is the exact max");
        assert_eq!(r.max(), 100.0);
    }

    #[test]
    fn empty_recorder_is_calm() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.percentile(99.0), 0.0);
        assert!(r.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut r = LatencyRecorder::new();
        for i in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0] {
            r.record(i);
        }
        let cdf = r.cdf(5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validated() {
        LatencyRecorder::new().percentile(0.0);
    }

    #[test]
    fn absorb_matches_direct_recording() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        let mut all = LatencyRecorder::new();
        for i in 0..200 {
            let v = (i % 23) as f64 * 31.5 + 5.0;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        a.absorb(&b);
        assert_eq!(a.len(), all.len());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert_eq!(a.percentile(99.0), all.percentile(99.0));
    }

    #[test]
    fn bounded_memory_on_million_sample_runs() {
        let mut r = LatencyRecorder::new();
        for i in 0..1_000_000u64 {
            r.record(60.0 + (i % 5000) as f64 / 3.0);
        }
        assert_eq!(r.len(), 1_000_000);
        // The whole recorder is a sparse bucket map: well under the
        // 8 MB a Vec<f64> of these samples would need.
        assert!(std::mem::size_of_val(&r) < 128);
    }
}
