//! Latency recording, percentiles and CDFs.

use serde::{Deserialize, Serialize};

/// Records a stream of latencies (µs) and answers distribution queries
/// (mean, percentiles, CDF series) — the raw material for the latency
/// CDFs of Fig. 18.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_us: f64) {
        debug_assert!(latency_us >= 0.0, "negative latency");
        self.samples.push(latency_us);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in recording order (or sorted order after a
    /// percentile/CDF query).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Appends every sample of `other`. The array front-end merges
    /// per-shard recorders this way, always in shard order, so the
    /// merged sample sequence is independent of thread interleaving.
    pub fn absorb(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100) by nearest-rank, or 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// A CDF as `points` evenly spaced `(latency_us, cumulative
    /// fraction)` pairs.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (self.samples[idx], frac)
            })
            .collect()
    }

    /// Maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(f64::from(i));
        }
        assert_eq!(r.len(), 100);
        assert!((r.mean() - 50.5).abs() < 1e-9);
        assert_eq!(r.percentile(50.0), 50.0);
        assert_eq!(r.percentile(90.0), 90.0);
        assert_eq!(r.percentile(100.0), 100.0);
        assert_eq!(r.max(), 100.0);
    }

    #[test]
    fn empty_recorder_is_calm() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.percentile(99.0), 0.0);
        assert!(r.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut r = LatencyRecorder::new();
        for i in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0] {
            r.record(i);
        }
        let cdf = r.cdf(5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validated() {
        LatencyRecorder::new().percentile(0.0);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut r = LatencyRecorder::new();
        r.record(5.0);
        assert_eq!(r.percentile(50.0), 5.0);
        r.record(1.0);
        assert_eq!(r.percentile(50.0), 1.0);
    }
}
