//! The host write buffer.
//!
//! Host writes complete as soon as their pages are accepted into the DRAM
//! write buffer; a background flush drains the buffer to NAND one WL
//! (3 pages) at a time. The buffer's utilization `μ` is the signal
//! cubeFTL's WL allocation manager uses to detect write bursts (§5.2):
//! `μ > μ_TH` means the host is producing data faster than the flush
//! drains it, so follower (fast) WLs should be used.
//!
//! Pages stay resident — and readable at DRAM latency — until their flush
//! completes; re-writing a buffered page updates it in place without
//! consuming a new slot.

use std::collections::{HashMap, VecDeque};

/// FIFO write buffer with in-place update and in-flight accounting.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    /// Pages accepted but not yet picked for a flush.
    queue: VecDeque<u64>,
    /// Residency count per LPN (queued or in-flight); reads hit on any.
    resident: HashMap<u64, u32>,
    /// Queued-copy count per LPN (for O(1) in-place update checks).
    queued_count: HashMap<u64, u32>,
    /// Pages picked for an ongoing flush but not yet programmed.
    in_flight: usize,
}

impl WriteBuffer {
    /// A buffer holding `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one slot");
        WriteBuffer {
            capacity,
            queue: VecDeque::new(),
            resident: HashMap::new(),
            queued_count: HashMap::new(),
            in_flight: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied slots (queued + in flight).
    pub fn fill(&self) -> usize {
        self.queue.len() + self.in_flight
    }

    /// Utilization `μ` in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.fill() as f64 / self.capacity as f64
    }

    /// Pages waiting to be flushed.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether `n` more pages fit right now.
    pub fn has_room(&self, n: usize) -> bool {
        self.fill() + n <= self.capacity
    }

    /// Accepts a host page write. Returns `false` (and changes nothing)
    /// if the buffer is full; returns `true` on acceptance. Re-writing a
    /// page that is still queued updates it in place.
    pub fn push(&mut self, lpn: u64) -> bool {
        // In-place update only if a queued (not yet in-flight) copy
        // exists; an in-flight copy is already bound to a NAND program,
        // so the re-write needs its own slot.
        if self.queued_count.get(&lpn).is_some_and(|c| *c > 0) {
            return true;
        }
        if !self.has_room(1) {
            return false;
        }
        self.queue.push_back(lpn);
        *self.resident.entry(lpn).or_insert(0) += 1;
        *self.queued_count.entry(lpn).or_insert(0) += 1;
        true
    }

    /// Whether a read of `lpn` can be served from DRAM.
    pub fn contains(&self, lpn: u64) -> bool {
        self.resident.get(&lpn).is_some_and(|c| *c > 0)
    }

    /// Takes up to 3 queued pages for a flush, marking them in flight.
    /// Returns `None` when fewer than `min_pages` are queued.
    pub fn take_for_flush(&mut self, min_pages: usize) -> Option<[u64; 3]> {
        if self.queue.len() < min_pages.max(1) {
            return None;
        }
        let mut out = [u64::MAX; 3];
        let n = self.queue.len().min(3);
        for slot in out.iter_mut().take(n) {
            let lpn = self.queue.pop_front().expect("checked length");
            match self.queued_count.get_mut(&lpn) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.queued_count.remove(&lpn);
                }
                None => unreachable!("queued page without count"),
            }
            *slot = lpn;
        }
        self.in_flight += n;
        Some(out)
    }

    /// Queued (not yet in-flight) pages in FIFO order — together with
    /// the in-flight flush batches held by the chips, this is what the
    /// power-loss-protection capacitor dumps on a sudden power-off.
    /// Deterministic: iterates the FIFO, never a hash map.
    pub fn queued_lpns(&self) -> impl Iterator<Item = u64> + '_ {
        self.queue.iter().copied()
    }

    /// Completes a flush of `lpns` (as returned by
    /// [`WriteBuffer::take_for_flush`]), freeing the slots.
    pub fn complete_flush(&mut self, lpns: [u64; 3]) {
        for lpn in lpns {
            if lpn == u64::MAX {
                continue;
            }
            self.in_flight -= 1;
            match self.resident.get_mut(&lpn) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.resident.remove(&lpn);
                }
                None => unreachable!("flush completion for unknown page"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_complete_cycle() {
        let mut b = WriteBuffer::new(8);
        for lpn in 0..6 {
            assert!(b.push(lpn));
        }
        assert_eq!(b.fill(), 6);
        assert!((b.utilization() - 0.75).abs() < 1e-12);

        let batch = b.take_for_flush(3).unwrap();
        assert_eq!(batch, [0, 1, 2]);
        assert_eq!(b.queued(), 3);
        assert_eq!(b.fill(), 6, "in-flight pages still occupy slots");
        assert!(b.contains(0), "in-flight pages still readable");

        b.complete_flush(batch);
        assert_eq!(b.fill(), 3);
        assert!(!b.contains(0));
        assert!(b.contains(3));
    }

    #[test]
    fn full_buffer_rejects() {
        let mut b = WriteBuffer::new(2);
        assert!(b.push(1));
        assert!(b.push(2));
        assert!(!b.push(3));
        assert_eq!(b.fill(), 2);
    }

    #[test]
    fn rewrite_of_queued_page_is_free() {
        let mut b = WriteBuffer::new(2);
        assert!(b.push(7));
        assert!(b.push(7));
        assert_eq!(b.fill(), 1);
    }

    #[test]
    fn rewrite_of_in_flight_page_takes_new_slot() {
        let mut b = WriteBuffer::new(4);
        b.push(7);
        let batch = b.take_for_flush(1).unwrap();
        assert_eq!(batch[0], 7);
        assert!(b.push(7), "needs a fresh slot");
        assert_eq!(b.fill(), 2);
        b.complete_flush(batch);
        assert_eq!(b.fill(), 1);
        assert!(b.contains(7), "newer copy still resident");
    }

    #[test]
    fn take_respects_min_pages() {
        let mut b = WriteBuffer::new(8);
        b.push(1);
        b.push(2);
        assert!(b.take_for_flush(3).is_none());
        let batch = b.take_for_flush(1).unwrap();
        assert_eq!(batch, [1, 2, u64::MAX]);
        b.complete_flush(batch);
        assert_eq!(b.fill(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        WriteBuffer::new(0);
    }
}
