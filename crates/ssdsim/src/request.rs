//! Host request types.

use serde::{Deserialize, Serialize};

/// Direction of a host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostOp {
    /// Read `n_pages` starting at `lpn`.
    Read,
    /// Write `n_pages` starting at `lpn`.
    Write,
    /// Discard (TRIM) `n_pages` starting at `lpn`: the pages become
    /// unmapped garbage the FTL can reclaim without migration.
    Trim,
}

/// One block-level host request, page-granular (the paper's platform uses
/// 16-KB pages; sub-page host I/O occupies a whole page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostRequest {
    /// Read or write.
    pub op: HostOp,
    /// First logical page number.
    pub lpn: u64,
    /// Number of consecutive pages (≥ 1).
    pub n_pages: u32,
}

impl HostRequest {
    /// A single-page read.
    pub fn read(lpn: u64) -> Self {
        HostRequest {
            op: HostOp::Read,
            lpn,
            n_pages: 1,
        }
    }

    /// A single-page write.
    pub fn write(lpn: u64) -> Self {
        HostRequest {
            op: HostOp::Write,
            lpn,
            n_pages: 1,
        }
    }

    /// A multi-page read.
    pub fn read_span(lpn: u64, n_pages: u32) -> Self {
        assert!(n_pages >= 1, "request must span at least one page");
        HostRequest {
            op: HostOp::Read,
            lpn,
            n_pages,
        }
    }

    /// A multi-page write.
    pub fn write_span(lpn: u64, n_pages: u32) -> Self {
        assert!(n_pages >= 1, "request must span at least one page");
        HostRequest {
            op: HostOp::Write,
            lpn,
            n_pages,
        }
    }

    /// A multi-page TRIM (discard).
    pub fn trim_span(lpn: u64, n_pages: u32) -> Self {
        assert!(n_pages >= 1, "request must span at least one page");
        HostRequest {
            op: HostOp::Trim,
            lpn,
            n_pages,
        }
    }

    /// Iterates over the logical pages the request touches.
    pub fn lpns(&self) -> impl Iterator<Item = u64> + '_ {
        (0..u64::from(self.n_pages)).map(move |i| self.lpn + i)
    }

    /// Whether the request is a write.
    pub fn is_write(&self) -> bool {
        self.op == HostOp::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_lpns() {
        let r = HostRequest::read(10);
        assert_eq!(r.lpns().collect::<Vec<_>>(), vec![10]);
        assert!(!r.is_write());
        let w = HostRequest::write_span(5, 3);
        assert_eq!(w.lpns().collect::<Vec<_>>(), vec![5, 6, 7]);
        assert!(w.is_write());
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_span_rejected() {
        HostRequest::read_span(0, 0);
    }

    #[test]
    fn trim_spans_pages() {
        let t = HostRequest::trim_span(10, 4);
        assert_eq!(t.op, HostOp::Trim);
        assert_eq!(t.lpns().count(), 4);
        assert!(!t.is_write());
    }
}
