//! The closed-loop SSD simulation engine.
//!
//! [`SsdSim`] models the evaluation platform of §6.1: a host issuing
//! requests at a fixed queue depth against an SSD with a DRAM write
//! buffer, `B` buses and `C` chips (chip `i` sits on bus `i mod B`).
//! Writes complete when buffered; a background flush drains the buffer to
//! NAND one WL (3 pages) at a time through the FTL under test. Reads hit
//! the buffer or queue on the chip holding the mapped page. Buses
//! serialize data transfers; chips serialize NAND operations.
//!
//! Time is simulated in µs (`f64`) through a deterministic event queue;
//! running the same workload against the same FTL always produces the
//! same [`SimReport`].

use crate::buffer::WriteBuffer;
use crate::driver::{FtlDriver, HostContext};
use crate::front::HostFront;
use crate::request::{HostOp, HostRequest};
use crate::stats::LatencyRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use telemetry::{
    Collector, EventKind as TraceKind, EventMask, LogHistogram, MetricRegistry, SampleRow, Series,
    TraceEvent,
};

/// Background-maintenance scheduling policy of the simulator.
///
/// When enabled, the simulator offers idle chips to the FTL's
/// [`FtlDriver::maintenance_step`] hook. Host traffic keeps strict
/// priority: a chip is only offered while its queue is empty, and after
/// each background operation (or an idle poll that found nothing due)
/// the chip stays reserved for host work for at least `min_gap_us` —
/// the starvation bound that keeps maintenance from monopolizing a chip
/// under sparse traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintSchedule {
    /// Whether background maintenance dispatch is active.
    pub enabled: bool,
    /// Minimum host-priority window between background operations on one
    /// chip, µs.
    pub min_gap_us: f64,
}

impl MaintSchedule {
    /// Maintenance disabled (the default — matches the seed simulator).
    pub fn off() -> Self {
        MaintSchedule {
            enabled: false,
            min_gap_us: 0.0,
        }
    }

    /// Maintenance enabled with a 200 µs host-priority gap.
    pub fn on() -> Self {
        MaintSchedule {
            enabled: true,
            min_gap_us: 200.0,
        }
    }
}

impl Default for MaintSchedule {
    fn default() -> Self {
        MaintSchedule::off()
    }
}

/// When the simulated power supply dies mid-run (see
/// [`SsdSim::run_with_spo`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpoTrigger {
    /// Cut power as soon as `n` host requests have completed.
    AtOps(u64),
    /// Cut power at a fixed simulated time, µs.
    AtTimeUs(f64),
    /// Seeded random cut: one Bernoulli draw per completed host request
    /// from a dedicated RNG stream (the engine's event order is
    /// untouched when this never fires).
    Seeded {
        /// Seed of the dedicated SPO RNG stream.
        seed: u64,
        /// Per-completed-request cut probability.
        rate: f64,
    },
}

/// A flush batch that a sudden power-off caught between
/// [`FtlDriver::write_wl`] and its chip-completion event: the WL program
/// (and, when `did_gc` is set, the preceding victim-block erase) was
/// interrupted mid-operation on the NAND die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightFlush {
    /// Chip the flush was executing (or queued) on.
    pub chip: usize,
    /// The batch's LPNs (`u64::MAX` = pad).
    pub lpns: [u64; 3],
    /// Whether the FTL ran a garbage-collection erase for this flush.
    pub did_gc: bool,
}

/// Everything the harness needs to model the physical consequences of a
/// sudden power-off and to audit the recovery afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoEvent {
    /// Simulated time of the cut, µs.
    pub at_us: f64,
    /// Host requests issued (pulled from the workload) before the cut.
    pub issued: u64,
    /// Host requests completed (acknowledged) before the cut.
    pub completed: u64,
    /// Every LPN of every *acknowledged* write request — the data the
    /// device must not lose.
    pub acked_write_lpns: Vec<u64>,
    /// Every LPN trimmed before the cut (a resurrected trimmed LPN is
    /// acceptable; a lost acknowledged LPN is not).
    pub trimmed_lpns: Vec<u64>,
    /// The power-loss-protection dump: all buffer-resident LPNs in
    /// deterministic order, oldest copy first (so a sequential replay
    /// leaves the newest copy mapped).
    pub buffered_lpns: Vec<u64>,
    /// Flush batches interrupted mid-NAND-operation, in chip order.
    pub interrupted_flushes: Vec<InFlightFlush>,
}

/// Static configuration of the simulated SSD platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Number of NAND chips.
    pub chips: usize,
    /// Number of buses; chip `i` is attached to bus `i % buses`.
    pub buses: usize,
    /// Host queue depth (outstanding requests the closed loop keeps).
    pub queue_depth: usize,
    /// Write-buffer capacity in pages.
    pub buffer_pages: usize,
    /// Host submission overhead per request, µs.
    pub t_submit_us: f64,
    /// DRAM buffer access latency (write acceptance / read hit), µs.
    pub t_buffer_us: f64,
    /// Bus transfer time per 16-KB page, µs.
    pub t_xfer_page_us: f64,
    /// Maximum flush operations queued per chip at a time.
    pub max_pending_flush_per_chip: usize,
    /// Background-maintenance scheduling policy.
    pub maint: MaintSchedule,
}

impl SsdConfig {
    /// The paper's platform: 2 buses × 4 chips (§6.1), queue depth 32.
    pub fn paper() -> Self {
        SsdConfig {
            chips: 8,
            buses: 2,
            queue_depth: 32,
            buffer_pages: 48,
            t_submit_us: 1.5,
            t_buffer_us: 5.0,
            t_xfer_page_us: 20.0,
            max_pending_flush_per_chip: 2,
            maint: MaintSchedule::off(),
        }
    }

    /// A small platform for tests.
    pub fn small() -> Self {
        SsdConfig {
            chips: 2,
            buses: 1,
            queue_depth: 4,
            buffer_pages: 16,
            t_submit_us: 1.5,
            t_buffer_us: 5.0,
            t_xfer_page_us: 20.0,
            max_pending_flush_per_chip: 2,
            maint: MaintSchedule::off(),
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::paper()
    }
}

/// Per-chip queueing and utilization statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChipStats {
    /// Deepest the chip's op queue got, counting the in-flight op.
    pub max_queue_depth: usize,
    /// Total time the chip spent executing operations, µs.
    pub busy_us: f64,
    /// Background maintenance operations executed on this chip.
    pub maint_ops: u64,
    /// NAND time spent on background maintenance, µs.
    pub maint_us: f64,
}

impl ChipStats {
    /// Fraction of `sim_time_us` the chip was busy, in `[0, 1]`.
    pub fn busy_fraction(&self, sim_time_us: f64) -> f64 {
        if sim_time_us <= 0.0 {
            0.0
        } else {
            (self.busy_us / sim_time_us).min(1.0)
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// FTL name.
    pub ftl_name: String,
    /// Completed host requests per second.
    pub iops: f64,
    /// Total simulated time, µs.
    pub sim_time_us: f64,
    /// Completed host requests.
    pub completed: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Completed TRIM (discard) requests.
    pub trims: u64,
    /// Host read-request latencies.
    pub read_latency: LatencyRecorder,
    /// Host write-request latencies.
    pub write_latency: LatencyRecorder,
    /// FTL-internal counters at the end of the run.
    pub ftl: crate::driver::FtlStats,
    /// Per-chip queueing/utilization statistics.
    pub chip_stats: Vec<ChipStats>,
}

impl SimReport {
    /// Write amplification as seen by the host: alias of
    /// [`SimReport::wa_host`], kept for callers that predate the
    /// host/total split.
    pub fn write_amplification(&self) -> Option<f64> {
        self.wa_host()
    }

    /// Host-attributed write amplification: NAND pages programmed on
    /// behalf of host traffic (host WLs + host-triggered GC migrations +
    /// safety re-programs) per host page written. Returns `None` when
    /// the run wrote nothing.
    pub fn wa_host(&self) -> Option<f64> {
        let host_pages: u64 = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total write amplification including background maintenance
    /// (scrub and wear-level migrations, maintenance-triggered GC) and
    /// checkpoint-region metadata programs on top of the
    /// host-attributed pages. `wa_total == wa_host` when maintenance
    /// and checkpointing are off.
    pub fn wa_total(&self) -> Option<f64> {
        let host_pages: u64 = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves
                + self.ftl.maint_page_moves()
                + self.ftl.ckpt_page_programs;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total background maintenance operations dispatched across chips.
    pub fn background_ops(&self) -> u64 {
        self.chip_stats.iter().map(|c| c.maint_ops).sum()
    }

    /// Deepest per-chip queue observed anywhere in the array.
    pub fn max_queue_depth(&self) -> usize {
        self.chip_stats
            .iter()
            .map(|c| c.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Mean per-chip busy-time fraction over the run.
    pub fn mean_busy_fraction(&self) -> f64 {
        if self.chip_stats.is_empty() {
            return 0.0;
        }
        self.chip_stats
            .iter()
            .map(|c| c.busy_fraction(self.sim_time_us))
            .sum::<f64>()
            / self.chip_stats.len() as f64
    }

    /// Registers the report's numbers into a metric registry under
    /// `prefix` (e.g. `ssd.iops`, `ssd.ftl.gc_runs`,
    /// `ssd.chip0.busy_us`). The report itself stays the compatibility
    /// view; the registry is the export surface.
    pub fn register_metrics(&self, reg: &mut MetricRegistry, prefix: &str) {
        reg.gauge(&format!("{prefix}.iops"), self.iops);
        reg.gauge(&format!("{prefix}.sim_time_us"), self.sim_time_us);
        reg.counter(&format!("{prefix}.completed"), self.completed);
        reg.counter(&format!("{prefix}.reads"), self.reads);
        reg.counter(&format!("{prefix}.writes"), self.writes);
        reg.counter(&format!("{prefix}.trims"), self.trims);
        reg.histogram(
            &format!("{prefix}.read_latency_us"),
            self.read_latency.histogram(),
        );
        reg.histogram(
            &format!("{prefix}.write_latency_us"),
            self.write_latency.histogram(),
        );
        reg.gauge(
            &format!("{prefix}.read_p99_us"),
            self.read_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.read_p999_us"),
            self.read_latency.percentile(99.9),
        );
        reg.gauge(
            &format!("{prefix}.write_p99_us"),
            self.write_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.write_p999_us"),
            self.write_latency.percentile(99.9),
        );
        reg.gauge(&format!("{prefix}.wa_host"), self.wa_host().unwrap_or(0.0));
        reg.gauge(
            &format!("{prefix}.wa_total"),
            self.wa_total().unwrap_or(0.0),
        );
        self.ftl.register_metrics(reg, &format!("{prefix}.ftl"));
        for (i, c) in self.chip_stats.iter().enumerate() {
            reg.gauge(
                &format!("{prefix}.chip{i}.max_queue_depth"),
                c.max_queue_depth as f64,
            );
            reg.gauge(&format!("{prefix}.chip{i}.busy_us"), c.busy_us);
            reg.counter(&format!("{prefix}.chip{i}.maint_ops"), c.maint_ops);
            reg.gauge(&format!("{prefix}.chip{i}.maint_us"), c.maint_us);
        }
    }
}

/// Pacing of the background rebuild service: how many rebuild page
/// operations one unit may dispatch, and the host-priority gap between
/// units. Mirrors [`MaintSchedule`]'s idle-window discipline — rebuild
/// ops only ever start on idle chips, and after each unit the service
/// backs off by `gap_us` so host traffic reclaims the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildSchedule {
    /// Page operations dispatched per rebuild unit (bounded burst).
    pub batch_pages: u32,
    /// Minimum virtual µs between the end of one unit and the start of
    /// the next.
    pub gap_us: f64,
}

impl RebuildSchedule {
    /// The default pacing: 8-page units, 200 µs host-priority gap
    /// (matching [`MaintSchedule::on`]).
    pub fn on() -> Self {
        RebuildSchedule {
            batch_pages: 8,
            gap_us: 200.0,
        }
    }
}

/// One background rebuild page operation against this device's local
/// space. Survivor shards run `Read`s (fragment fetches for XOR
/// reconstruction); the spare shard runs `Write`s (programming the
/// reconstructed pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildOp {
    /// Read the page mapped at this local LPN.
    Read(u64),
    /// Program reconstructed data at this local LPN.
    Write(u64),
}

/// Progress of the background rebuild service on one device. Not part
/// of [`SimReport`] — read it through [`SsdSim::rebuild_progress`]
/// after the run, so reports of rebuild-free runs stay byte-identical
/// to every pre-rebuild golden.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebuildProgress {
    /// Fragment reads completed.
    pub reads_done: u64,
    /// Reconstruction writes completed.
    pub writes_done: u64,
    /// Read ops skipped because the local page was never mapped
    /// (nothing durable to fetch).
    pub skipped: u64,
    /// Virtual time the queue fully drained, µs (0.0 if it never did).
    pub done_at_us: f64,
    /// `(t_us, cumulative ops)` checkpoint per completed rebuild unit —
    /// the rebuild curve the bench plots against the idle-window budget.
    pub curve: Vec<(f64, u64)>,
}

impl RebuildProgress {
    /// Total rebuild ops accounted for (reads + writes + skips).
    pub fn ops_done(&self) -> u64 {
        self.reads_done + self.writes_done + self.skipped
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A buffered write request completes at the host interface.
    WriteAccepted { req: usize },
    /// One page of a read request is served (from buffer or NAND).
    ReadPartServed { req: usize },
    /// A chip finished its current operation.
    ChipIdle { chip: usize },
    /// Rebuild-service poll timer: keeps the event loop alive while
    /// rebuild work is pending but nothing else is in flight (e.g.
    /// after the host workload drained, between paced units).
    RebuildTick,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone)]
enum ChipOp {
    Read {
        req: usize,
        nand_us: f64,
    },
    Flush {
        lpns: [u64; 3],
        nand_us: f64,
        did_gc: bool,
    },
    /// A background maintenance operation. Data moves stay on-chip, so
    /// no bus transfer is charged.
    Maint {
        nand_us: f64,
    },
    /// A background rebuild page operation. The page crosses the device
    /// boundary (survivor fragment out, reconstructed page in), so one
    /// page of bus transfer is charged like a host read.
    Rebuild {
        nand_us: f64,
    },
}

#[derive(Debug, Default)]
struct ChipState {
    busy: bool,
    queue: VecDeque<ChipOp>,
    pending_flushes: usize,
    current: Option<ChipOp>,
    /// Earliest time the maintenance scheduler may use this chip again
    /// (the host-priority/starvation bound, and the idle-poll backoff).
    maint_allowed_at: f64,
    stats: ChipStats,
}

#[derive(Debug)]
struct InFlightRequest {
    arrival_us: f64,
    remaining_pages: u32,
    op: HostOp,
    done: bool,
    /// First LPN of the request's span (for the SPO acked-write ledger).
    lpn: u64,
    /// Span length in pages.
    pages: u32,
    /// Front-end token echoed back on completion (front mode only; 0 on
    /// the legacy closed-loop path).
    token: u32,
}

#[derive(Debug)]
struct StalledWrite {
    req: usize,
    lpns: Vec<u64>,
}

/// Outcome of one bounded [`SsdSim::run_step`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The event budget ran out with simulation work still pending;
    /// call [`SsdSim::run_step`] again.
    Running,
    /// The workload drained and every in-flight event completed.
    Drained,
    /// The armed sudden-power-off trigger fired; the device state at the
    /// cut is available from [`SsdSim::run_end`].
    PowerCut,
}

/// The simulation engine. Owns the platform state; borrows the FTL and
/// the workload for the duration of [`SsdSim::run`].
#[derive(Debug)]
pub struct SsdSim {
    config: SsdConfig,
    now: f64,
    seq: u64,
    host_free_at: f64,
    bus_free_at: Vec<f64>,
    chips: Vec<ChipState>,
    buffer: WriteBuffer,
    events: BinaryHeap<Event>,
    requests: Vec<InFlightRequest>,
    stalled: VecDeque<StalledWrite>,
    outstanding: usize,
    completed: u64,
    reads_done: u64,
    writes_done: u64,
    trims_done: u64,
    read_latency: LatencyRecorder,
    write_latency: LatencyRecorder,
    /// TRIMmed LPNs of the current run — recorded only while an SPO
    /// trigger is armed (`None` otherwise, zero cost on normal runs).
    spo_trims: Option<Vec<u64>>,
    /// Cap on host requests pulled from the workload this run.
    issue_limit: u64,
    /// The armed sudden-power-off trigger, if any.
    spo: Option<SpoTrigger>,
    /// Dedicated RNG stream for [`SpoTrigger::Seeded`].
    spo_rng: Option<StdRng>,
    /// Set once the armed trigger fires; consumed by [`SsdSim::run_end`].
    spo_event: Option<SpoEvent>,
    /// Events processed this run (progress logging under `SSDSIM_DEBUG`).
    event_count: u64,
    /// Structured event trace sink (inert unless
    /// [`SsdSim::enable_telemetry`] armed a mask).
    trace: Collector,
    /// Virtual-time series sampler (`None` = sampling off).
    sampler: Option<SamplerState>,
    /// Whether the run is driven by a [`HostFront`] (open-loop front
    /// mode) instead of the legacy closed-loop workload iterator.
    front_mode: bool,
    /// Completions awaiting delivery to the front: `(token, t_us)` in
    /// completion order. Only populated in front mode.
    front_done: Vec<(u32, f64)>,
    /// Pacing of the background rebuild service (`None` = rebuild off,
    /// the zero-cost default path).
    rebuild_sched: Option<RebuildSchedule>,
    /// Pending rebuild page operations, dispatched front-to-back.
    rebuild_queue: VecDeque<RebuildOp>,
    /// Rebuild ops currently executing on chips (one unit at a time:
    /// the next unit starts only after this reaches zero again).
    rebuild_inflight: u32,
    /// Earliest time the next rebuild unit may start.
    rebuild_allowed_at: f64,
    /// Whether a [`EventKind::RebuildTick`] is already in the heap
    /// (dedupes the liveness timer).
    rebuild_tick_armed: bool,
    /// Round-robin cursor for placing rebuild writes on chips.
    rebuild_chip: usize,
    /// Progress accounting for the current run's rebuild service.
    rebuild_progress: RebuildProgress,
}

/// State of the periodic registry sampler: the next virtual-time
/// threshold, per-window accumulators, and the rows collected so far.
/// Sampling is driven by event-loop time-threshold crossings, which are
/// idempotent at `run_step` slice boundaries, so the rows are a pure
/// function of the workload/FTL/config — independent of step budgets
/// and worker-thread counts.
#[derive(Debug)]
struct SamplerState {
    /// Sampling interval, virtual µs.
    interval_us: f64,
    /// Next sample threshold, virtual µs.
    next_us: f64,
    /// Shard tag stamped on every row.
    shard: u32,
    /// Rows collected this run.
    series: Series,
    /// Host completions as of the previous row (window base).
    win_completed: u64,
    /// NAND program latencies of host flushes in the current window
    /// (tPROG proxy; GC-carrying flushes excluded).
    win_tprog: LogHistogram,
    /// FTL counters as of the previous row (window deltas).
    last_ftl: crate::driver::FtlStats,
}

// The sharded array engine (crate `ssdarray`) runs one `SsdSim` per
// worker thread; keep the engine `Send`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SsdSim>();
};

impl SsdSim {
    /// Creates an engine for `config`.
    pub fn new(config: SsdConfig) -> Self {
        assert!(config.chips > 0 && config.buses > 0, "need chips and buses");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        SsdSim {
            now: 0.0,
            seq: 0,
            host_free_at: 0.0,
            bus_free_at: vec![0.0; config.buses],
            chips: (0..config.chips).map(|_| ChipState::default()).collect(),
            buffer: WriteBuffer::new(config.buffer_pages),
            events: BinaryHeap::new(),
            requests: Vec::new(),
            stalled: VecDeque::new(),
            outstanding: 0,
            completed: 0,
            reads_done: 0,
            writes_done: 0,
            trims_done: 0,
            read_latency: LatencyRecorder::new(),
            write_latency: LatencyRecorder::new(),
            spo_trims: None,
            issue_limit: 0,
            spo: None,
            spo_rng: None,
            spo_event: None,
            event_count: 0,
            trace: Collector::disabled(),
            sampler: None,
            front_mode: false,
            front_done: Vec::new(),
            rebuild_sched: None,
            rebuild_queue: VecDeque::new(),
            rebuild_inflight: 0,
            rebuild_allowed_at: 0.0,
            rebuild_tick_armed: false,
            rebuild_chip: 0,
            rebuild_progress: RebuildProgress::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Arms telemetry for subsequent runs: event categories in `mask`
    /// are traced (tagged with `shard`), and when `sample_interval_us`
    /// is set the engine snapshots a time-series row every that many
    /// virtual µs. Call before [`SsdSim::run_begin`]; with
    /// `EventMask::NONE` and no interval this is a no-op and the engine
    /// stays on the zero-cost path.
    pub fn enable_telemetry(
        &mut self,
        mask: EventMask,
        shard: u32,
        sample_interval_us: Option<f64>,
    ) {
        self.trace = if mask.is_empty() {
            Collector::disabled()
        } else {
            Collector::enabled(mask, shard)
        };
        self.sampler = sample_interval_us.map(|interval_us| {
            assert!(
                interval_us > 0.0 && interval_us.is_finite(),
                "sample interval must be positive"
            );
            SamplerState {
                interval_us,
                next_us: interval_us,
                shard,
                series: Series::new(interval_us),
                win_completed: 0,
                win_tprog: LogHistogram::new(),
                last_ftl: crate::driver::FtlStats::default(),
            }
        });
    }

    /// Drains the simulator-side trace events collected so far (host
    /// I/O completions). The caller merges them with the FTL-side
    /// stream via [`telemetry::merge_streams`].
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Drains the sampled time series (empty when sampling is off).
    pub fn take_series(&mut self) -> Series {
        match &mut self.sampler {
            Some(s) => {
                let interval = s.interval_us;
                std::mem::replace(&mut s.series, Series::new(interval))
            }
            None => Series::default(),
        }
    }

    /// Writes `lpns` through the FTL without simulating time — used to
    /// establish realistic mappings and block occupancy before a measured
    /// run (the FTL's stats should be reset afterwards by the caller via
    /// a fresh measurement window).
    pub fn prefill<F: FtlDriver + ?Sized>(&mut self, ftl: &mut F, lpns: impl Iterator<Item = u64>) {
        let ctx = HostContext {
            buffer_utilization: 0.0,
            now_us: 0.0,
        };
        let mut batch = [u64::MAX; 3];
        let mut n = 0usize;
        let mut chip = 0usize;
        for lpn in lpns {
            batch[n] = lpn;
            n += 1;
            if n == 3 {
                ftl.write_wl(chip, batch, &ctx);
                chip = (chip + 1) % self.config.chips;
                batch = [u64::MAX; 3];
                n = 0;
            }
        }
        if n > 0 {
            ftl.write_wl(chip, batch, &ctx);
        }
    }

    /// Runs up to `max_requests` from `workload` against `ftl` and
    /// returns the report. The engine can be reused for further runs;
    /// statistics restart each run.
    pub fn run<F, W>(&mut self, ftl: &mut F, workload: W, max_requests: u64) -> SimReport
    where
        F: FtlDriver + ?Sized,
        W: IntoIterator<Item = HostRequest>,
    {
        self.run_inner(ftl, workload, max_requests, None).0
    }

    /// Like [`SsdSim::run`], but with a sudden-power-off trigger armed.
    /// If the trigger fires before the workload drains, the run halts
    /// mid-operation and the returned [`SpoEvent`] describes the exact
    /// device state at the cut; the report then covers the truncated
    /// run. Returns `None` for the event when the trigger never fired.
    ///
    /// Pass the workload by `&mut` iterator to keep the unissued
    /// remainder for the post-recovery resume run.
    pub fn run_with_spo<F, W>(
        &mut self,
        ftl: &mut F,
        workload: W,
        max_requests: u64,
        trigger: SpoTrigger,
    ) -> (SimReport, Option<SpoEvent>)
    where
        F: FtlDriver + ?Sized,
        W: IntoIterator<Item = HostRequest>,
    {
        self.run_inner(ftl, workload, max_requests, Some(trigger))
    }

    fn run_inner<F, W>(
        &mut self,
        ftl: &mut F,
        workload: W,
        max_requests: u64,
        spo: Option<SpoTrigger>,
    ) -> (SimReport, Option<SpoEvent>)
    where
        F: FtlDriver + ?Sized,
        W: IntoIterator<Item = HostRequest>,
    {
        self.run_begin(max_requests, spo);
        let mut workload = workload.into_iter();
        while self.run_step(ftl, &mut workload, u64::MAX) == StepOutcome::Running {}
        self.run_end(ftl)
    }

    /// Arms a new run: resets the platform state, caps the number of
    /// host requests pulled from the workload at `max_requests` and
    /// installs an optional sudden-power-off trigger.
    ///
    /// Together with [`SsdSim::run_step`] and [`SsdSim::run_end`] this
    /// is the stepping API an external engine (the sharded array
    /// front-end) drives; [`SsdSim::run`] is the one-call wrapper.
    pub fn run_begin(&mut self, max_requests: u64, spo: Option<SpoTrigger>) {
        self.reset();
        self.issue_limit = max_requests;
        // The SPO machinery only exists while a trigger is armed: normal
        // runs create no RNG, record no trims and take the exact same
        // event path as before.
        self.spo = spo;
        self.spo_trims = spo.map(|_| Vec::new());
        self.spo_rng = match spo {
            Some(SpoTrigger::Seeded { seed, .. }) => {
                Some(StdRng::seed_from_u64(seed ^ 0x5b0f_f00d))
            }
            _ => None,
        };
    }

    /// Arms the background rebuild service for the current run: `ops`
    /// are dispatched front-to-back in units of at most
    /// `sched.batch_pages`, each op starting only on an idle chip and
    /// each unit separated by `sched.gap_us` of host-priority backoff.
    /// Rebuild work keeps the event loop alive past the host workload,
    /// so a run drains only once the queue is empty.
    ///
    /// Call **after** [`SsdSim::run_begin`] — arming belongs to one run
    /// and is cleared by the next `run_begin`. The op list is computed
    /// by the caller before the run starts, so the service itself is a
    /// pure function of `(ops, sched, workload, ftl)` and byte-identity
    /// across step budgets and thread counts is preserved.
    pub fn arm_rebuild(
        &mut self,
        sched: RebuildSchedule,
        ops: impl IntoIterator<Item = RebuildOp>,
    ) {
        assert!(sched.batch_pages > 0, "rebuild unit must move pages");
        assert!(
            sched.gap_us >= 0.0 && sched.gap_us.is_finite(),
            "rebuild gap must be a finite non-negative time"
        );
        self.rebuild_sched = Some(sched);
        self.rebuild_queue = ops.into_iter().collect();
        self.rebuild_inflight = 0;
        self.rebuild_allowed_at = 0.0;
        self.rebuild_tick_armed = false;
        self.rebuild_chip = 0;
        self.rebuild_progress = RebuildProgress::default();
    }

    /// Progress of the current run's rebuild service (all-zero when
    /// rebuild was never armed).
    pub fn rebuild_progress(&self) -> &RebuildProgress {
        &self.rebuild_progress
    }

    /// Rebuild ops still pending (not yet dispatched).
    pub fn rebuild_pending(&self) -> usize {
        self.rebuild_queue.len()
    }

    /// Drains the pending rebuild queue — used to carry unfinished
    /// rebuild work across a power cut into the recovery run (the next
    /// [`SsdSim::run_begin`] would otherwise discard it).
    pub fn take_rebuild_pending(&mut self) -> Vec<RebuildOp> {
        self.rebuild_sched = None;
        self.rebuild_inflight = 0;
        self.rebuild_tick_armed = false;
        self.rebuild_queue.drain(..).collect()
    }

    /// Advances the armed run by at most `max_events` simulation events.
    /// The outcome is a pure function of the workload, the FTL and the
    /// configuration: slicing a run into any sequence of budgets yields
    /// byte-identical results, because the issue/maintenance polls at a
    /// slice boundary are idempotent at an unchanged simulated time.
    pub fn run_step<F, W>(&mut self, ftl: &mut F, workload: &mut W, max_events: u64) -> StepOutcome
    where
        F: FtlDriver + ?Sized,
        W: Iterator<Item = HostRequest>,
    {
        if self.spo_event.is_some() {
            return StepOutcome::PowerCut;
        }
        self.fill_queue(workload, ftl);
        self.try_maint(ftl);
        self.try_rebuild(ftl);
        let mut sliced = 0u64;
        while sliced < max_events {
            let Some(&ev) = self.events.peek() else {
                return StepOutcome::Drained;
            };
            if let Some(SpoTrigger::AtTimeUs(t_cut)) = self.spo {
                if ev.t >= t_cut {
                    // Power dies strictly before the next event executes.
                    self.sample_until(t_cut, ftl);
                    self.now = self.now.max(t_cut);
                    self.spo_event = Some(self.spo_snapshot());
                    return StepOutcome::PowerCut;
                }
            }
            let ev = self.events.pop().expect("peeked event exists");
            debug_assert!(ev.t >= self.now - 1e-9, "time went backwards");
            self.sample_until(ev.t, ftl);
            sliced += 1;
            self.event_count += 1;
            if self.event_count.is_multiple_of(1_000_000) && std::env::var("SSDSIM_DEBUG").is_ok() {
                eprintln!(
                    "events={}M now={:.0} completed={} outstanding={} stalled={} buffer={}/{}",
                    self.event_count / 1_000_000,
                    self.now,
                    self.completed,
                    self.outstanding,
                    self.stalled.len(),
                    self.buffer.fill(),
                    self.buffer.capacity()
                );
            }
            let completed_before = self.completed;
            self.now = ev.t;
            match ev.kind {
                EventKind::WriteAccepted { req } => self.finish_request(req),
                EventKind::ReadPartServed { req } => {
                    self.requests[req].remaining_pages -= 1;
                    if self.requests[req].remaining_pages == 0 {
                        self.finish_request(req);
                    }
                }
                EventKind::ChipIdle { chip } => self.chip_op_done(chip, ftl),
                EventKind::RebuildTick => self.rebuild_tick_armed = false,
            }
            self.fill_queue(workload, ftl);
            self.try_maint(ftl);
            self.try_rebuild(ftl);
            match self.spo {
                Some(SpoTrigger::AtOps(n)) if self.completed >= n => {
                    self.spo_event = Some(self.spo_snapshot());
                    return StepOutcome::PowerCut;
                }
                Some(SpoTrigger::Seeded { rate, .. }) if rate > 0.0 => {
                    let rng = self.spo_rng.as_mut().expect("seeded trigger has an RNG");
                    let mut fired = false;
                    for _ in completed_before..self.completed {
                        if rng.gen_bool(rate) {
                            fired = true;
                            break;
                        }
                    }
                    if fired {
                        self.spo_event = Some(self.spo_snapshot());
                        return StepOutcome::PowerCut;
                    }
                }
                _ => {}
            }
        }
        StepOutcome::Running
    }

    /// Finalizes the armed run and returns its report plus the SPO
    /// event, if the trigger fired.
    pub fn run_end<F: FtlDriver + ?Sized>(&mut self, ftl: &F) -> (SimReport, Option<SpoEvent>) {
        let spo_event = self.spo_event.take();
        if spo_event.is_none() {
            debug_assert_eq!(self.outstanding, 0, "drain left requests in flight");
        }
        self.spo = None;
        self.spo_rng = None;
        self.spo_trims = None;
        let sim_time_us = self.now.max(1e-9);
        let report = SimReport {
            ftl_name: ftl.name().to_owned(),
            iops: self.completed as f64 / (sim_time_us / 1e6),
            sim_time_us,
            completed: self.completed,
            reads: self.reads_done,
            writes: self.writes_done,
            trims: self.trims_done,
            read_latency: std::mem::take(&mut self.read_latency),
            write_latency: std::mem::take(&mut self.write_latency),
            ftl: ftl.stats(),
            chip_stats: self.chips.iter().map(|c| c.stats).collect(),
        };
        (report, spo_event)
    }

    /// Arms an open-loop run driven by a [`HostFront`] instead of a
    /// workload iterator. Pair with [`SsdSim::run_step_front`] and
    /// [`SsdSim::run_front_end`]. SPO triggers are not supported in
    /// front mode.
    pub fn run_front_begin(&mut self, max_requests: u64) {
        self.run_begin(max_requests, None);
        self.front_mode = true;
    }

    /// Advances an open-loop front-driven run by at most `max_events`
    /// steps (device events and arrival time-jumps both count). Like
    /// [`SsdSim::run_step`], the outcome is a pure function of the
    /// front, the FTL and the configuration: the polls at a slice
    /// boundary are idempotent at an unchanged simulated time, so any
    /// slicing yields byte-identical results.
    ///
    /// The loop alternates two sources of progress: device events from
    /// the heap, and time-jumps to the front's next arrival whenever
    /// that arrival precedes every pending event *and* the device has
    /// queue room (otherwise the arrival is consumed naturally once
    /// event processing moves `now` past it). Completions are handed
    /// back to the front before new work is pulled, so the front's
    /// latency accounting always sees completion-before-dispatch order
    /// at equal timestamps.
    pub fn run_step_front<F, H>(
        &mut self,
        ftl: &mut F,
        front: &mut H,
        max_events: u64,
    ) -> StepOutcome
    where
        F: FtlDriver + ?Sized,
        H: HostFront + ?Sized,
    {
        debug_assert!(self.front_mode, "run_front_begin must arm front mode");
        self.deliver_front_completions(front);
        self.front_fill(front, ftl);
        self.try_maint(ftl);
        let mut sliced = 0u64;
        while sliced < max_events {
            let next_event_t = self.events.peek().map(|e| e.t);
            let next_arrival = if self.can_issue() {
                front.next_arrival_us()
            } else {
                None
            };
            let jump_to = match (next_event_t, next_arrival) {
                (None, None) => return StepOutcome::Drained,
                (Some(te), Some(ta)) if ta < te => Some(ta),
                (None, Some(ta)) => Some(ta),
                _ => None,
            };
            sliced += 1;
            if let Some(ta) = jump_to {
                // Device idle (or next event later than the arrival):
                // jump virtual time forward to the arrival instant and
                // let the front admit it.
                self.sample_until(ta, ftl);
                self.now = self.now.max(ta);
                self.front_fill(front, ftl);
                self.try_maint(ftl);
                continue;
            }
            let ev = self.events.pop().expect("peeked event exists");
            debug_assert!(ev.t >= self.now - 1e-9, "time went backwards");
            self.sample_until(ev.t, ftl);
            self.event_count += 1;
            self.now = ev.t;
            match ev.kind {
                EventKind::WriteAccepted { req } => self.finish_request(req),
                EventKind::ReadPartServed { req } => {
                    self.requests[req].remaining_pages -= 1;
                    if self.requests[req].remaining_pages == 0 {
                        self.finish_request(req);
                    }
                }
                EventKind::ChipIdle { chip } => self.chip_op_done(chip, ftl),
                // Rebuild is only armed on legacy closed-loop runs; a
                // stray tick in front mode is a harmless no-op.
                EventKind::RebuildTick => self.rebuild_tick_armed = false,
            }
            self.deliver_front_completions(front);
            self.front_fill(front, ftl);
            self.try_maint(ftl);
        }
        StepOutcome::Running
    }

    /// Finalizes a front-driven run and returns its report.
    pub fn run_front_end<F: FtlDriver + ?Sized>(&mut self, ftl: &F) -> SimReport {
        debug_assert!(
            self.front_done.is_empty(),
            "front completions left undelivered"
        );
        self.run_end(ftl).0
    }

    /// Hands buffered completions back to the front in completion order
    /// at their recorded completion instants.
    fn deliver_front_completions<H: HostFront + ?Sized>(&mut self, front: &mut H) {
        for (token, t) in self.front_done.drain(..) {
            front.complete(token, t);
        }
    }

    /// Whether the device can accept another host request right now.
    fn can_issue(&self) -> bool {
        self.outstanding < self.config.queue_depth
            && (self.requests.len() as u64) < self.issue_limit
    }

    /// Advances the front to `now` (consuming arrivals) and pulls
    /// scheduled requests while the device has queue room. Idempotent
    /// at an unchanged `now`.
    fn front_fill<F, H>(&mut self, front: &mut H, ftl: &mut F)
    where
        F: FtlDriver + ?Sized,
        H: HostFront + ?Sized,
    {
        front.advance(self.now);
        while self.can_issue() {
            let Some(fr) = front.pop(self.now) else { break };
            self.issue(fr.req, fr.token, ftl);
        }
    }

    /// Captures the device state at the instant of the power cut: the
    /// interrupted flush batches (current + queued per chip, in chip
    /// order), the PLP buffer dump and the acknowledged-write ledger.
    fn spo_snapshot(&mut self) -> SpoEvent {
        let mut interrupted = Vec::new();
        for (chip, c) in self.chips.iter().enumerate() {
            if let Some(ChipOp::Flush { lpns, did_gc, .. }) = &c.current {
                interrupted.push(InFlightFlush {
                    chip,
                    lpns: *lpns,
                    did_gc: *did_gc,
                });
            }
            for op in &c.queue {
                if let ChipOp::Flush { lpns, did_gc, .. } = op {
                    interrupted.push(InFlightFlush {
                        chip,
                        lpns: *lpns,
                        did_gc: *did_gc,
                    });
                }
            }
        }
        // PLP dump: in-flight batches first (older copies), then the
        // FIFO queue (newer copies), keeping only the last occurrence of
        // each LPN so a sequential replay maps the newest data.
        let mut dump: Vec<u64> = interrupted
            .iter()
            .flat_map(|f| f.lpns)
            .filter(|&l| l != u64::MAX)
            .collect();
        dump.extend(self.buffer.queued_lpns());
        let mut seen = HashSet::new();
        let mut buffered: Vec<u64> = dump
            .iter()
            .rev()
            .filter(|&&l| seen.insert(l))
            .copied()
            .collect();
        buffered.reverse();
        let acked_write_lpns = self
            .requests
            .iter()
            .filter(|r| r.done && r.op == HostOp::Write)
            .flat_map(|r| r.lpn..r.lpn + u64::from(r.pages))
            .collect();
        SpoEvent {
            at_us: self.now,
            issued: self.requests.len() as u64,
            completed: self.completed,
            acked_write_lpns,
            trimmed_lpns: self.spo_trims.take().unwrap_or_default(),
            buffered_lpns: buffered,
            interrupted_flushes: interrupted,
        }
    }

    fn reset(&mut self) {
        self.now = 0.0;
        self.seq = 0;
        self.host_free_at = 0.0;
        self.bus_free_at.iter_mut().for_each(|b| *b = 0.0);
        for c in &mut self.chips {
            *c = ChipState::default();
        }
        self.buffer = WriteBuffer::new(self.config.buffer_pages);
        self.events.clear();
        self.requests.clear();
        self.stalled.clear();
        self.outstanding = 0;
        self.completed = 0;
        self.reads_done = 0;
        self.writes_done = 0;
        self.trims_done = 0;
        self.read_latency = LatencyRecorder::new();
        self.write_latency = LatencyRecorder::new();
        self.spo_trims = None;
        self.issue_limit = 0;
        self.spo = None;
        self.spo_rng = None;
        self.spo_event = None;
        self.event_count = 0;
        self.front_mode = false;
        self.front_done.clear();
        self.rebuild_sched = None;
        self.rebuild_queue.clear();
        self.rebuild_inflight = 0;
        self.rebuild_allowed_at = 0.0;
        self.rebuild_tick_armed = false;
        self.rebuild_chip = 0;
        self.rebuild_progress = RebuildProgress::default();
        self.trace.reset();
        if let Some(s) = &mut self.sampler {
            s.next_us = s.interval_us;
            s.series = Series::new(s.interval_us);
            s.win_completed = 0;
            s.win_tprog = LogHistogram::new();
            s.last_ftl = crate::driver::FtlStats::default();
        }
    }

    fn push_event(&mut self, t: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            t,
            seq: self.seq,
            kind,
        });
    }

    fn ctx(&self) -> HostContext {
        HostContext {
            buffer_utilization: self.buffer.utilization(),
            now_us: self.now,
        }
    }

    fn fill_queue<F, W>(&mut self, workload: &mut W, ftl: &mut F)
    where
        F: FtlDriver + ?Sized,
        W: Iterator<Item = HostRequest>,
    {
        while self.outstanding < self.config.queue_depth
            && (self.requests.len() as u64) < self.issue_limit
        {
            let Some(req) = workload.next() else { break };
            self.issue(req, 0, ftl);
        }
    }

    fn issue<F: FtlDriver + ?Sized>(&mut self, req: HostRequest, token: u32, ftl: &mut F) {
        assert!(
            req.op != HostOp::Write || (req.n_pages as usize) <= self.config.buffer_pages,
            "request larger than the write buffer"
        );
        let submit = self.now.max(self.host_free_at);
        self.host_free_at = submit + self.config.t_submit_us;

        let id = self.requests.len();
        self.requests.push(InFlightRequest {
            arrival_us: submit,
            remaining_pages: req.n_pages,
            op: req.op,
            done: false,
            lpn: req.lpn,
            pages: req.n_pages,
            token,
        });
        self.outstanding += 1;

        match req.op {
            HostOp::Write => {
                if self.buffer.has_room(req.n_pages as usize) {
                    for lpn in req.lpns() {
                        let accepted = self.buffer.push(lpn);
                        debug_assert!(accepted, "room was checked");
                    }
                    self.push_event(
                        submit + self.config.t_buffer_us,
                        EventKind::WriteAccepted { req: id },
                    );
                } else {
                    self.stalled.push_back(StalledWrite {
                        req: id,
                        lpns: req.lpns().collect(),
                    });
                }
                self.try_flush(ftl);
            }
            HostOp::Trim => {
                // TRIM is a mapping-table operation: it completes at
                // DRAM speed and leaves reclaimable garbage behind.
                if let Some(trims) = &mut self.spo_trims {
                    trims.extend(req.lpns());
                }
                for lpn in req.lpns() {
                    ftl.trim(lpn);
                }
                self.push_event(
                    submit + self.config.t_buffer_us,
                    EventKind::WriteAccepted { req: id },
                );
            }
            HostOp::Read => {
                for lpn in req.lpns() {
                    if self.buffer.contains(lpn) {
                        self.push_event(
                            submit + self.config.t_buffer_us,
                            EventKind::ReadPartServed { req: id },
                        );
                        continue;
                    }
                    let ctx = self.ctx();
                    match ftl.read_page(lpn, &ctx) {
                        Some(pr) => {
                            self.enqueue_chip_op(
                                pr.chip,
                                ChipOp::Read {
                                    req: id,
                                    nand_us: pr.nand_us,
                                },
                            );
                        }
                        None => {
                            // Never-written page: served as an unmapped
                            // read at DRAM speed.
                            self.push_event(
                                submit + self.config.t_buffer_us,
                                EventKind::ReadPartServed { req: id },
                            );
                        }
                    }
                }
            }
        }
    }

    fn finish_request(&mut self, req: usize) {
        let r = &mut self.requests[req];
        debug_assert!(!r.done, "request completed twice");
        r.done = true;
        let latency = self.now - r.arrival_us;
        let (op, lpn, token) = (r.op, r.lpn, r.token);
        if self.front_mode {
            self.front_done.push((token, self.now));
        }
        match op {
            HostOp::Write => {
                self.write_latency.record(latency);
                self.writes_done += 1;
            }
            HostOp::Read => {
                self.read_latency.record(latency);
                self.reads_done += 1;
            }
            HostOp::Trim => self.trims_done += 1,
        }
        self.completed += 1;
        self.outstanding -= 1;
        if self.trace.wants(EventMask::HOST_IO) {
            let op = match op {
                HostOp::Read => "read",
                HostOp::Write => "write",
                HostOp::Trim => "trim",
            };
            self.trace.emit(
                self.now,
                TraceKind::HostIo {
                    op,
                    lpn,
                    latency_us: latency,
                },
            );
        }
    }

    fn enqueue_chip_op(&mut self, chip: usize, op: ChipOp) {
        assert!(chip < self.chips.len(), "FTL returned invalid chip {chip}");
        if matches!(op, ChipOp::Flush { .. }) {
            self.chips[chip].pending_flushes += 1;
        }
        self.chips[chip].queue.push_back(op);
        let depth = self.chips[chip].queue.len() + usize::from(self.chips[chip].busy);
        let c = &mut self.chips[chip];
        c.stats.max_queue_depth = c.stats.max_queue_depth.max(depth);
        if !self.chips[chip].busy {
            self.start_next_op(chip);
        }
    }

    fn start_next_op(&mut self, chip: usize) {
        let Some(op) = self.chips[chip].queue.pop_front() else {
            return;
        };
        let bus = chip % self.config.buses;
        let pages = match &op {
            ChipOp::Read { .. } | ChipOp::Rebuild { .. } => 1.0,
            ChipOp::Flush { lpns, .. } => lpns.iter().filter(|&&l| l != u64::MAX).count() as f64,
            ChipOp::Maint { .. } => 0.0,
        };
        let nand_us = match &op {
            ChipOp::Read { nand_us, .. }
            | ChipOp::Flush { nand_us, .. }
            | ChipOp::Maint { nand_us }
            | ChipOp::Rebuild { nand_us } => *nand_us,
        };
        let done = if pages > 0.0 {
            let transfer = pages * self.config.t_xfer_page_us;
            let start = self.now.max(self.bus_free_at[bus]);
            self.bus_free_at[bus] = start + transfer;
            start + transfer + nand_us
        } else {
            // Bus-less (on-chip) operation.
            self.now + nand_us
        };
        self.chips[chip].busy = true;
        self.chips[chip].stats.busy_us += done - self.now;
        self.chips[chip].current = Some(op);
        self.push_event(done, EventKind::ChipIdle { chip });
    }

    fn chip_op_done<F: FtlDriver + ?Sized>(&mut self, chip: usize, ftl: &mut F) {
        let op = self.chips[chip]
            .current
            .take()
            .expect("chip completion without an operation");
        self.chips[chip].busy = false;
        match op {
            ChipOp::Read { req, .. } => {
                self.requests[req].remaining_pages -= 1;
                if self.requests[req].remaining_pages == 0 {
                    self.finish_request(req);
                }
            }
            ChipOp::Flush {
                lpns,
                nand_us,
                did_gc,
            } => {
                // GC-free flushes are the run's tPROG proxy: the NAND
                // time is the WL program alone.
                if !did_gc {
                    if let Some(s) = &mut self.sampler {
                        s.win_tprog.record(nand_us);
                    }
                }
                self.chips[chip].pending_flushes -= 1;
                self.buffer.complete_flush(lpns);
                self.retry_stalled_writes();
            }
            ChipOp::Maint { .. } => {
                // Starvation bound: the chip now belongs to host traffic
                // for at least the configured gap.
                self.chips[chip].maint_allowed_at = self.now + self.config.maint.min_gap_us;
            }
            ChipOp::Rebuild { .. } => self.rebuild_op_done(),
        }
        self.start_next_op(chip);
        self.try_flush(ftl);
    }

    /// One rebuild page op finished on a chip. When it was the last of
    /// its unit, close the unit: checkpoint the progress curve, start
    /// the host-priority gap, and keep the liveness timer armed while
    /// work remains.
    fn rebuild_op_done(&mut self) {
        debug_assert!(self.rebuild_inflight > 0, "rebuild completion unaccounted");
        self.rebuild_inflight -= 1;
        if self.rebuild_inflight > 0 {
            return;
        }
        let gap = self
            .rebuild_sched
            .as_ref()
            .map_or(0.0, |s| s.gap_us.max(1.0));
        self.rebuild_allowed_at = self.now + gap;
        self.rebuild_progress
            .curve
            .push((self.now, self.rebuild_progress.ops_done()));
        if self.rebuild_queue.is_empty() {
            self.rebuild_progress.done_at_us = self.now;
        } else {
            self.arm_rebuild_tick(self.rebuild_allowed_at);
        }
    }

    /// Pushes the rebuild liveness timer unless one is already pending.
    fn arm_rebuild_tick(&mut self, at: f64) {
        if self.rebuild_tick_armed {
            return;
        }
        self.rebuild_tick_armed = true;
        self.push_event(at.max(self.now), EventKind::RebuildTick);
    }

    fn retry_stalled_writes(&mut self) {
        while let Some(front) = self.stalled.front() {
            if !self.buffer.has_room(front.lpns.len()) {
                break;
            }
            let sw = self.stalled.pop_front().expect("front exists");
            for lpn in &sw.lpns {
                let accepted = self.buffer.push(*lpn);
                debug_assert!(accepted, "room was checked");
            }
            self.push_event(
                self.now + self.config.t_buffer_us,
                EventKind::WriteAccepted { req: sw.req },
            );
        }
    }

    fn try_flush<F: FtlDriver + ?Sized>(&mut self, ftl: &mut F) {
        loop {
            let min_pages = if self.stalled.is_empty() { 3 } else { 1 };
            if self.buffer.queued() < min_pages {
                return;
            }
            // Pick the least-loaded chip that can still accept a flush.
            let Some(chip) = self.pick_flush_chip() else {
                return;
            };
            let Some(lpns) = self.buffer.take_for_flush(min_pages) else {
                return;
            };
            let ctx = self.ctx();
            let w = ftl.write_wl(chip, lpns, &ctx);
            self.enqueue_chip_op(
                chip,
                ChipOp::Flush {
                    lpns,
                    nand_us: w.nand_us,
                    did_gc: w.did_gc,
                },
            );
        }
    }

    /// Offers every idle chip to the FTL's maintenance hook. Runs only
    /// while host requests are outstanding, so maintenance can never
    /// keep the event loop alive past the workload — and an idle poll
    /// that finds nothing due backs the chip off by the host-priority
    /// gap rather than re-asking on every event.
    fn try_maint<F: FtlDriver + ?Sized>(&mut self, ftl: &mut F) {
        if !self.config.maint.enabled || self.outstanding == 0 {
            return;
        }
        for chip in 0..self.chips.len() {
            let c = &self.chips[chip];
            if c.busy || !c.queue.is_empty() || self.now < c.maint_allowed_at {
                continue;
            }
            let ctx = self.ctx();
            match ftl.maintenance_step(chip, &ctx) {
                Some(work) => {
                    self.chips[chip].stats.maint_ops += 1;
                    self.chips[chip].stats.maint_us += work.nand_us;
                    self.enqueue_chip_op(
                        chip,
                        ChipOp::Maint {
                            nand_us: work.nand_us,
                        },
                    );
                }
                None => {
                    self.chips[chip].maint_allowed_at =
                        self.now + self.config.maint.min_gap_us.max(1.0);
                }
            }
        }
    }

    /// Dispatches the next rebuild unit when the service is armed, no
    /// unit is in flight, the host-priority gap has elapsed, and an
    /// idle window is open (at least one chip has nothing queued — the
    /// maintenance scheduler's idleness signal). The unit then
    /// dispatches atomically: each op makes exactly one FTL call, so
    /// FTL side effects cannot depend on how often a slice boundary
    /// re-polls the service — the precondition checks are state-only.
    /// Counters account ops at dispatch; the unit closes (and the
    /// curve checkpoints) when the last of its ops completes.
    fn try_rebuild<F: FtlDriver + ?Sized>(&mut self, ftl: &mut F) {
        let Some(sched) = self.rebuild_sched else {
            return;
        };
        if self.rebuild_queue.is_empty() || self.rebuild_inflight > 0 {
            return;
        }
        if self.now < self.rebuild_allowed_at {
            self.arm_rebuild_tick(self.rebuild_allowed_at);
            return;
        }
        let idle_window = self.chips.iter().any(|c| !c.busy && c.queue.is_empty());
        if !idle_window {
            // Device saturated by host work: back off by the gap. The
            // timer lands strictly in the future (gap ≥ 1 µs), so a
            // blocked poll cannot spin at one timestamp; chip-idle
            // events re-poll sooner anyway.
            self.arm_rebuild_tick(self.now + sched.gap_us.max(1.0));
            return;
        }
        let mut dispatched = 0u32;
        while dispatched < sched.batch_pages {
            let Some(op) = self.rebuild_queue.pop_front() else {
                break;
            };
            dispatched += 1;
            match op {
                RebuildOp::Read(lpn) => {
                    let ctx = self.ctx();
                    match ftl.read_page(lpn, &ctx) {
                        Some(pr) => {
                            self.rebuild_inflight += 1;
                            self.rebuild_progress.reads_done += 1;
                            self.enqueue_chip_op(
                                pr.chip,
                                ChipOp::Rebuild {
                                    nand_us: pr.nand_us,
                                },
                            );
                        }
                        None => {
                            // Never-mapped page: nothing durable to
                            // fetch — account and move on.
                            self.rebuild_progress.skipped += 1;
                        }
                    }
                }
                RebuildOp::Write(lpn) => {
                    let chip = self.pick_rebuild_chip();
                    let ctx = self.ctx();
                    let w = ftl.write_wl(chip, [lpn, u64::MAX, u64::MAX], &ctx);
                    self.rebuild_inflight += 1;
                    self.rebuild_progress.writes_done += 1;
                    self.enqueue_chip_op(chip, ChipOp::Rebuild { nand_us: w.nand_us });
                }
            }
        }
        if dispatched > 0 && self.rebuild_inflight == 0 {
            // The whole unit was skips: close it here, nothing will
            // complete on a chip.
            self.rebuild_allowed_at = self.now + sched.gap_us.max(1.0);
            self.rebuild_progress
                .curve
                .push((self.now, self.rebuild_progress.ops_done()));
            if self.rebuild_queue.is_empty() {
                self.rebuild_progress.done_at_us = self.now;
            } else {
                self.arm_rebuild_tick(self.rebuild_allowed_at);
            }
        }
    }

    /// The chip for the next rebuild write: the first idle chip from
    /// the round-robin cursor when one exists (preferring the idle
    /// window), else plain round-robin — reconstruction load spreads
    /// over the spare's chips either way.
    fn pick_rebuild_chip(&mut self) -> usize {
        let n = self.chips.len();
        for i in 0..n {
            let chip = (self.rebuild_chip + i) % n;
            if !self.chips[chip].busy && self.chips[chip].queue.is_empty() {
                self.rebuild_chip = (chip + 1) % n;
                return chip;
            }
        }
        let chip = self.rebuild_chip % n;
        self.rebuild_chip = (chip + 1) % n;
        chip
    }

    /// Emits a sample row for every interval threshold at or below `t`.
    /// Called just before simulated time advances to `t`, so each row
    /// reflects the device state at its threshold instant (nothing can
    /// change between two consecutive event times).
    fn sample_until<F: FtlDriver + ?Sized>(&mut self, t: f64, ftl: &F) {
        if self.sampler.is_none() {
            return;
        }
        let mut s = self.sampler.take().expect("sampler present");
        while s.next_us <= t {
            let stats = ftl.stats();
            let d_completed = self.completed - s.win_completed;
            let d_reads = stats.nand_reads - s.last_ftl.nand_reads;
            let d_retries = stats.read_retries - s.last_ftl.read_retries;
            let host_pages = stats.host_wl_programs * 3;
            let wa_total = if host_pages == 0 {
                0.0
            } else {
                ((stats.host_wl_programs + stats.safety_reprograms + stats.program_aborts) * 3
                    + stats.gc_page_moves
                    + stats.maint_page_moves()
                    + stats.ckpt_page_programs) as f64
                    / host_pages as f64
            };
            s.series.push(
                s.shard,
                SampleRow {
                    t_us: s.next_us,
                    completed: self.completed,
                    iops: d_completed as f64 / (s.interval_us / 1e6),
                    tprog_mean_us: s.win_tprog.mean(),
                    tprog_p99_us: if s.win_tprog.is_empty() {
                        0.0
                    } else {
                        s.win_tprog.percentile(99.0)
                    },
                    retry_rate: if d_reads == 0 {
                        0.0
                    } else {
                        d_retries as f64 / d_reads as f64
                    },
                    queue_depth: self
                        .chips
                        .iter()
                        .map(|c| c.queue.len() as u64 + u64::from(c.busy))
                        .sum(),
                    free_blocks: ftl.free_blocks(),
                    wa_total,
                },
            );
            s.win_completed = self.completed;
            s.win_tprog = LogHistogram::new();
            s.last_ftl = stats;
            s.next_us += s.interval_us;
        }
        self.sampler = Some(s);
    }

    fn pick_flush_chip(&self) -> Option<usize> {
        self.chips
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pending_flushes < self.config.max_pending_flush_per_chip)
            .min_by_key(|(_, c)| (c.queue.len() + usize::from(c.busy), c.pending_flushes))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{FtlStats, PageRead, WlWrite};
    use std::collections::HashMap;

    /// A stub FTL with fixed latencies, striping reads by LPN.
    struct StubFtl {
        chips: usize,
        program_us: f64,
        read_us: f64,
        mapped: HashMap<u64, usize>,
        stats: FtlStats,
        utilizations: Vec<f64>,
        /// Background-maintenance units this stub still wants to run
        /// (0 = never asks for maintenance).
        maint_budget: u64,
    }

    impl StubFtl {
        fn new(chips: usize) -> Self {
            StubFtl {
                chips,
                program_us: 700.0,
                read_us: 80.0,
                mapped: HashMap::new(),
                stats: FtlStats::default(),
                utilizations: Vec::new(),
                maint_budget: 0,
            }
        }
    }

    impl FtlDriver for StubFtl {
        fn write_wl(&mut self, chip: usize, lpns: [u64; 3], ctx: &HostContext) -> WlWrite {
            self.utilizations.push(ctx.buffer_utilization);
            for lpn in lpns {
                if lpn != u64::MAX {
                    self.mapped.insert(lpn, chip);
                }
            }
            self.stats.host_wl_programs += 1;
            WlWrite {
                nand_us: self.program_us,
                did_gc: false,
                leader: true,
            }
        }

        fn read_page(&mut self, lpn: u64, _ctx: &HostContext) -> Option<PageRead> {
            let chip = *self.mapped.get(&lpn)?;
            self.stats.nand_reads += 1;
            Some(PageRead {
                chip: chip % self.chips,
                nand_us: self.read_us,
                retries: 0,
            })
        }

        fn trim(&mut self, lpn: u64) {
            if self.mapped.remove(&lpn).is_some() {
                self.stats.host_trims += 1;
            }
        }

        fn maintenance_step(
            &mut self,
            _chip: usize,
            _ctx: &HostContext,
        ) -> Option<crate::driver::MaintWork> {
            if self.maint_budget == 0 {
                return None;
            }
            self.maint_budget -= 1;
            self.stats.scrub_blocks += 1;
            Some(crate::driver::MaintWork { nand_us: 300.0 })
        }

        fn stats(&self) -> FtlStats {
            self.stats
        }

        fn name(&self) -> &str {
            "stub"
        }
    }

    #[test]
    fn pure_write_workload_is_bound_by_flush_throughput() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let n = 600u64;
        let report = sim.run(&mut ftl, (0..n).map(HostRequest::write), n);
        assert_eq!(report.completed, n);
        assert_eq!(report.writes, n);
        // 600 pages = 200 WLs over 2 chips ≈ 100 sequential programs of
        // (60 µs transfer + 700 µs NAND), with a single bus serializing
        // transfers. Expect sim time in the right ballpark.
        let min_expected = 100.0 * 700.0; // perfect overlap
        let max_expected = 200.0 * 800.0; // fully serial
        assert!(
            (min_expected..max_expected).contains(&report.sim_time_us),
            "sim time {} µs",
            report.sim_time_us
        );
        assert_eq!(ftl.stats.host_wl_programs, 200);
    }

    #[test]
    fn buffered_writes_complete_fast_until_backpressure() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let report = sim.run(&mut ftl, (0..400u64).map(HostRequest::write), 400);
        let lat = report.write_latency;
        // The fastest writes (those that find buffer room — the first
        // ~buffer_pages of them) only pay the buffer latency...
        assert!(lat.percentile(2.0) <= cfg.t_buffer_us + 1e-9);
        // ... while the tail pays for NAND programs (backpressure).
        assert!(lat.percentile(99.0) > 100.0);
    }

    #[test]
    fn reads_after_writes_hit_nand_with_read_latency() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        sim.prefill(&mut ftl, 0..1000);
        let report = sim.run(&mut ftl, (0..1000u64).map(HostRequest::read), 1000);
        assert_eq!(report.reads, 1000);
        assert!(report.ftl.nand_reads >= 1000);
        let lat = report.read_latency;
        assert!(lat.percentile(50.0) >= 80.0, "NAND reads cost ≥ tREAD");
        assert!(report.iops > 0.0);
    }

    #[test]
    fn buffer_hits_serve_reads_at_dram_speed() {
        let cfg = SsdConfig {
            buffer_pages: 64,
            ..SsdConfig::small()
        };
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        // Write 2 pages then immediately read them back: the reads should
        // mostly hit the buffer (flushes need 3 queued pages).
        let reqs = vec![
            HostRequest::write(1),
            HostRequest::write(2),
            HostRequest::read(1),
            HostRequest::read(2),
        ];
        let report = sim.run(&mut ftl, reqs, 4);
        assert_eq!(report.completed, 4);
        assert_eq!(report.ftl.nand_reads, 0, "reads must hit the buffer");
    }

    #[test]
    fn mixed_workload_completes_and_reports_utilization() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        sim.prefill(&mut ftl, 0..64);
        let reqs: Vec<HostRequest> = (0..500u64)
            .map(|i| {
                if i % 2 == 0 {
                    HostRequest::write(i % 64)
                } else {
                    HostRequest::read(i % 64)
                }
            })
            .collect();
        let report = sim.run(&mut ftl, reqs, 500);
        assert_eq!(report.completed, 500);
        assert!(report.reads > 0 && report.writes > 0);
        assert!(!ftl.utilizations.is_empty());
        assert!(ftl.utilizations.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn multi_page_requests_complete_once() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        sim.prefill(&mut ftl, 0..32);
        let reqs = vec![
            HostRequest::write_span(0, 6),
            HostRequest::read_span(0, 6),
            HostRequest::read_span(8, 4),
        ];
        let report = sim.run(&mut ftl, reqs, 3);
        assert_eq!(report.completed, 3);
        assert_eq!(report.writes, 1);
        assert_eq!(report.reads, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SsdConfig::small();
        let reqs: Vec<HostRequest> = (0..300u64)
            .map(|i| {
                if i % 3 == 0 {
                    HostRequest::read(i % 50)
                } else {
                    HostRequest::write(i % 50)
                }
            })
            .collect();
        let run = || {
            let mut sim = SsdSim::new(cfg);
            let mut ftl = StubFtl::new(cfg.chips);
            sim.prefill(&mut ftl, 0..50);
            let r = sim.run(&mut ftl, reqs.clone(), 300);
            (r.iops, r.sim_time_us, r.completed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_is_reusable() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let a = sim.run(&mut ftl, (0..60u64).map(HostRequest::write), 60);
        let b = sim.run(&mut ftl, (0..60u64).map(HostRequest::write), 60);
        assert_eq!(a.completed, b.completed);
        assert!((a.sim_time_us - b.sim_time_us).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "larger than the write buffer")]
    fn oversized_request_rejected() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        sim.run(
            &mut ftl,
            std::iter::once(HostRequest::write_span(0, 1000)),
            1,
        );
    }

    #[test]
    fn more_buses_reduce_transfer_contention() {
        // A read-heavy workload over two chips: with a single bus the
        // transfers serialize; with two buses they overlap, so the run
        // finishes strictly sooner.
        let run_with = |buses: usize| {
            let cfg = SsdConfig {
                chips: 2,
                buses,
                queue_depth: 8,
                buffer_pages: 16,
                t_submit_us: 0.5,
                t_buffer_us: 5.0,
                t_xfer_page_us: 150.0, // transfer-dominated: one bus saturates
                max_pending_flush_per_chip: 2,
                maint: MaintSchedule::off(),
            };
            let mut sim = SsdSim::new(cfg);
            let mut ftl = StubFtl::new(cfg.chips);
            sim.prefill(&mut ftl, 0..512);
            sim.run(
                &mut ftl,
                (0..2000u64).map(|i| HostRequest::read(i % 512)),
                2000,
            )
            .sim_time_us
        };
        let one = run_with(1);
        let two = run_with(2);
        assert!(
            two < one * 0.85,
            "two buses ({two} µs) should beat one bus ({one} µs)"
        );
    }

    #[test]
    fn flushes_spread_across_chips() {
        // With all chips idle, consecutive flushes must fan out rather
        // than pile onto chip 0.
        let cfg = SsdConfig {
            chips: 4,
            buses: 2,
            ..SsdConfig::small()
        };
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let report = sim.run(&mut ftl, (0..240u64).map(HostRequest::write), 240);
        assert_eq!(report.completed, 240);
        let mut per_chip = [0u32; 4];
        for chip in ftl.mapped.values() {
            per_chip[*chip] += 1;
        }
        for (i, count) in per_chip.iter().enumerate() {
            assert!(*count > 0, "chip {i} never received a flush: {per_chip:?}");
        }
    }

    #[test]
    fn stalled_writes_all_complete_exactly_once() {
        // Saturate the buffer; every issued write must complete exactly
        // once despite stalling.
        let cfg = SsdConfig {
            buffer_pages: 6,
            ..SsdConfig::small()
        };
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let n = 300u64;
        let report = sim.run(&mut ftl, (0..n).map(HostRequest::write), n);
        assert_eq!(report.writes, n);
        assert_eq!(report.write_latency.len() as u64, n);
    }

    #[test]
    fn trims_complete_fast_and_unmap() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        sim.prefill(&mut ftl, 0..30);
        let reqs = vec![
            HostRequest::trim_span(0, 10),
            HostRequest::read(0),
            HostRequest::read(20),
        ];
        let report = sim.run(&mut ftl, reqs, 3);
        assert_eq!(report.trims, 1);
        assert_eq!(report.reads, 2);
        // The trimmed page reads as unmapped (DRAM-speed in the stub's
        // case: the mapping is gone so read_page returns None).
        assert!(!ftl.mapped.contains_key(&0));
        assert!(ftl.mapped.contains_key(&20));
    }

    #[test]
    fn write_amplification_reported() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let report = sim.run(&mut ftl, (0..120u64).map(HostRequest::write), 120);
        // The stub never garbage-collects, so WA = 1 exactly.
        assert_eq!(report.write_amplification(), Some(1.0));
        // A fresh FTL that never wrote reports no WA.
        let mut fresh = StubFtl::new(cfg.chips);
        let empty = sim.run(&mut fresh, std::iter::empty(), 0);
        assert_eq!(empty.write_amplification(), None);
    }

    #[test]
    fn queue_stats_are_collected() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let report = sim.run(&mut ftl, (0..200u64).map(HostRequest::write), 200);
        assert_eq!(report.chip_stats.len(), cfg.chips);
        assert!(report.max_queue_depth() >= 1);
        let busy = report.mean_busy_fraction();
        assert!(
            busy > 0.0 && busy <= 1.0,
            "busy fraction out of range: {busy}"
        );
        for c in &report.chip_stats {
            assert!(c.busy_us <= report.sim_time_us + 1e-9);
        }
    }

    #[test]
    fn maintenance_runs_in_idle_windows_and_is_counted() {
        let cfg = SsdConfig {
            maint: MaintSchedule {
                enabled: true,
                min_gap_us: 50.0,
            },
            ..SsdConfig::small()
        };
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        ftl.maint_budget = 40;
        sim.prefill(&mut ftl, 0..512);
        let report = sim.run(
            &mut ftl,
            (0..2000u64).map(|i| HostRequest::read(i % 512)),
            2000,
        );
        assert_eq!(report.completed, 2000);
        let bg = report.background_ops();
        assert!(bg > 0, "idle windows should admit background work");
        assert_eq!(bg, report.ftl.scrub_blocks, "counters must agree");
        assert!(report.chip_stats.iter().any(|c| c.maint_us > 0.0));
    }

    #[test]
    fn maintenance_disabled_never_dispatches() {
        let cfg = SsdConfig::small(); // maint off
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        ftl.maint_budget = 40;
        let report = sim.run(&mut ftl, (0..200u64).map(HostRequest::write), 200);
        assert_eq!(report.background_ops(), 0);
        assert_eq!(ftl.maint_budget, 40, "hook must never be polled");
    }

    #[test]
    fn endless_maintenance_demand_cannot_stall_the_run() {
        // An FTL that always has maintenance due must not keep the event
        // loop alive after the host workload drains.
        let cfg = SsdConfig {
            maint: MaintSchedule {
                enabled: true,
                min_gap_us: 10.0,
            },
            ..SsdConfig::small()
        };
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        ftl.maint_budget = u64::MAX;
        let report = sim.run(&mut ftl, (0..120u64).map(HostRequest::write), 120);
        assert_eq!(report.completed, 120);
        assert!(report.background_ops() > 0);
    }

    #[test]
    fn larger_host_priority_gap_throttles_maintenance() {
        let run_with = |gap: f64| {
            let cfg = SsdConfig {
                maint: MaintSchedule {
                    enabled: true,
                    min_gap_us: gap,
                },
                ..SsdConfig::small()
            };
            let mut sim = SsdSim::new(cfg);
            let mut ftl = StubFtl::new(cfg.chips);
            ftl.maint_budget = u64::MAX;
            // All three LPNs land on chip 0, so chip 1 sees host traffic
            // never and is limited purely by the gap.
            sim.prefill(&mut ftl, 0..3);
            sim.run(
                &mut ftl,
                (0..1500u64).map(|i| HostRequest::read(i % 3)),
                1500,
            )
            .background_ops()
        };
        let eager = run_with(10.0);
        let throttled = run_with(5_000.0);
        assert!(
            throttled < eager,
            "gap 5000 µs ({throttled} ops) should throttle vs 10 µs ({eager} ops)"
        );
    }

    #[test]
    fn wa_total_includes_maintenance_moves() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let mut report = sim.run(&mut ftl, (0..120u64).map(HostRequest::write), 120);
        assert_eq!(report.wa_host(), report.wa_total());
        // Maintenance moves inflate only the total.
        report.ftl.scrub_page_moves = report.ftl.host_wl_programs * 3;
        assert_eq!(report.wa_host(), Some(1.0));
        assert_eq!(report.wa_total(), Some(2.0));
    }

    #[test]
    fn zero_requests_is_a_noop() {
        let cfg = SsdConfig::small();
        let mut sim = SsdSim::new(cfg);
        let mut ftl = StubFtl::new(cfg.chips);
        let report = sim.run(&mut ftl, std::iter::empty(), 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.iops, 0.0);
    }

    #[test]
    fn rebuild_service_drains_past_the_workload_and_is_slice_invariant() {
        let run_with = |max_events: u64| {
            let cfg = SsdConfig::small();
            let mut sim = SsdSim::new(cfg);
            let mut ftl = StubFtl::new(cfg.chips);
            sim.prefill(&mut ftl, 0..120);
            sim.run_begin(60, None);
            let ops = (0..50u64)
                .map(RebuildOp::Read)
                .chain([RebuildOp::Read(9_999)]) // never mapped: skipped
                .chain((5_000..5_030u64).map(RebuildOp::Write));
            sim.arm_rebuild(
                RebuildSchedule {
                    batch_pages: 4,
                    gap_us: 50.0,
                },
                ops,
            );
            let mut workload = (0..60u64).map(|i| HostRequest::read(i % 120));
            while sim.run_step(&mut ftl, &mut workload, max_events) == StepOutcome::Running {}
            let progress = sim.rebuild_progress().clone();
            let (report, _) = sim.run_end(&ftl);
            (format!("{report:?}"), progress)
        };
        let (report_a, prog) = run_with(u64::MAX);
        assert_eq!(prog.reads_done, 50);
        assert_eq!(prog.skipped, 1);
        assert_eq!(prog.writes_done, 30);
        assert_eq!(prog.ops_done(), 81);
        assert!(
            prog.done_at_us > 0.0,
            "queue must drain even after the host workload ends"
        );
        assert!(!prog.curve.is_empty());
        assert!(
            prog.curve
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1),
            "rebuild curve must be monotonic"
        );
        assert_eq!(prog.curve.last().unwrap().1, 81);
        // Step-slice budgets must not leak into results or progress.
        let (report_b, prog_b) = run_with(7);
        assert_eq!(report_a, report_b);
        assert_eq!(prog, prog_b);
    }

    #[test]
    fn rebuild_gap_paces_units() {
        let done_at = |gap_us: f64| {
            let cfg = SsdConfig::small();
            let mut sim = SsdSim::new(cfg);
            let mut ftl = StubFtl::new(cfg.chips);
            sim.prefill(&mut ftl, 0..60);
            sim.run_begin(0, None);
            sim.arm_rebuild(
                RebuildSchedule {
                    batch_pages: 2,
                    gap_us,
                },
                (0..40u64).map(RebuildOp::Read),
            );
            let mut workload = std::iter::empty();
            while sim.run_step(&mut ftl, &mut workload, u64::MAX) == StepOutcome::Running {}
            assert_eq!(sim.rebuild_progress().reads_done, 40);
            sim.rebuild_progress().done_at_us
        };
        let fast = done_at(10.0);
        let slow = done_at(2_000.0);
        assert!(
            slow > fast,
            "larger host-priority gap must stretch the rebuild ({fast} vs {slow})"
        );
    }
}
