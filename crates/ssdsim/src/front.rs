//! The host front-end interface: an open-loop, scheduler-driven request
//! source for [`SsdSim`](crate::SsdSim)'s front stepping mode.
//!
//! The legacy closed-loop mode pulls requests straight from an iterator
//! whenever the device has queue room. A [`HostFront`] instead models
//! the host side of an NVMe-style interface: requests *arrive* at
//! scheduled instants, wait in per-tenant submission queues, and a
//! scheduler decides which queued request the device pulls next. The
//! `hostq` crate provides the multi-queue, multi-tenant implementation;
//! this trait keeps `ssdsim` free of any policy.
//!
//! ## Contract (determinism by construction)
//!
//! * [`HostFront::advance`] must consume **every** arrival at or before
//!   `now_us` (admitting or shedding it), so that a repeated call at an
//!   unchanged time is a no-op — the engine relies on this to keep
//!   `run_step_front` slice boundaries idempotent.
//! * [`HostFront::next_arrival_us`] must be non-decreasing between
//!   `advance` calls and strictly advance past consumed arrivals.
//! * [`HostFront::pop`] must be work-conserving: it returns a request
//!   whenever any submission queue is non-empty. Returning `None` with
//!   backlogged work would live-lock the engine's arrival loop.
//! * Tokens identify one in-flight request: the engine passes the token
//!   back exactly once via [`HostFront::complete`] when the device
//!   finishes the request.

use crate::request::HostRequest;

/// One scheduled dispatch from the front: the request plus an opaque
/// token the engine echoes back on completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontRequest {
    /// The host request to issue.
    pub req: HostRequest,
    /// Opaque per-in-flight-request token (the front's in-flight slot).
    pub token: u32,
}

/// An open-loop host front-end: arrival admission, queueing/scheduling,
/// and completion accounting. See the module docs for the contract.
pub trait HostFront {
    /// The earliest arrival instant not yet consumed by
    /// [`HostFront::advance`], if any arrival remains.
    fn next_arrival_us(&self) -> Option<f64>;

    /// Consumes every arrival at or before `now_us`: each is either
    /// admitted to its submission queue or deterministically shed
    /// (admission control). Idempotent at an unchanged `now_us`.
    fn advance(&mut self, now_us: f64);

    /// Schedules the next admitted request for dispatch at `now_us`.
    /// Must return `Some` whenever any submission queue is non-empty.
    fn pop(&mut self, now_us: f64) -> Option<FrontRequest>;

    /// The device completed the in-flight request identified by `token`
    /// at `now_us`.
    fn complete(&mut self, token: u32, now_us: f64);

    /// Whether the front can never produce another request: all arrival
    /// processes exhausted and every submission queue empty.
    fn exhausted(&self) -> bool;
}
