//! The interface between the simulator and a flash translation layer.
//!
//! The simulator owns time, queueing and the write buffer; the FTL owns
//! placement, mapping, NAND parameter selection and garbage collection.
//! Each call hands the FTL a chip to place data on (the simulator picks
//! an idle chip to maximize parallelism) plus a [`HostContext`] carrying
//! the write-buffer utilization `μ` that cubeFTL's WL allocation manager
//! consumes (§5.2).

use serde::{Deserialize, Serialize};

/// Per-call context the simulator passes to the FTL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostContext {
    /// Write-buffer utilization `μ` in `[0, 1]` at dispatch time.
    pub buffer_utilization: f64,
    /// Simulated time in µs.
    pub now_us: f64,
}

/// Result of asking the FTL to program one WL worth of host pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WlWrite {
    /// NAND time the chip is busy for this write, µs: any GC the FTL ran
    /// first, plus the WL program itself (and a §4.1.4 re-program if the
    /// safety check fired).
    pub nand_us: f64,
    /// Whether a garbage collection ran as part of this write.
    pub did_gc: bool,
    /// Whether the WL was a (slow) leader WL (`false` = follower).
    pub leader: bool,
}

/// Result of asking the FTL to perform one unit of background
/// maintenance (retention scrub, wear-level migration, OPM re-monitor)
/// on an idle chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintWork {
    /// NAND time the chip is busy with the background operation, µs.
    /// Maintenance data moves stay on-chip (copy-back style), so the
    /// simulator charges no bus transfer for them.
    pub nand_us: f64,
}

/// Result of asking the FTL to read one logical page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRead {
    /// Chip holding the mapped physical page.
    pub chip: usize,
    /// NAND time for the read, including read retries, µs.
    pub nand_us: f64,
    /// Number of read retries the NAND performed (`NumRetry`).
    pub retries: u32,
}

/// FTL-internal counters, reported alongside the simulator's own
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host WLs programmed.
    pub host_wl_programs: u64,
    /// WLs programmed on the fast follower path.
    pub follower_wl_programs: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Valid pages migrated by GC.
    pub gc_page_moves: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Total read retries observed.
    pub read_retries: u64,
    /// Page reads served from NAND.
    pub nand_reads: u64,
    /// §4.1.4 safety-check re-programs.
    pub safety_reprograms: u64,
    /// §4.1.4 h-layer demotions: monitored parameters discarded and the
    /// layer held at conservative defaults until re-monitored.
    pub safety_demotions: u64,
    /// Program suspend/abort events recovered by re-issuing the data on
    /// the next WL.
    pub program_aborts: u64,
    /// Reads recovered from a stale cached `ΔV_Ref` (ORT refreshed).
    pub stuck_retry_recoveries: u64,
    /// Reads recovered from an uncorrectable first attempt via a full
    /// offset scan.
    pub uncorrectable_recoveries: u64,
    /// Host TRIMs applied (pages unmapped).
    pub host_trims: u64,
    /// Blocks refreshed (migrated and erased) by the retention scrubber.
    pub scrub_blocks: u64,
    /// Valid pages migrated by the retention scrubber.
    pub scrub_page_moves: u64,
    /// Leader-WL sample reads issued by the scrubber to probe block BER.
    pub scrub_sample_reads: u64,
    /// H-layers re-monitored by the periodic OPM refresh service.
    pub remonitored_layers: u64,
    /// Valid pages migrated by the wear-leveling service.
    pub wear_level_moves: u64,
    /// Valid pages migrated by garbage collections that ran *inside*
    /// maintenance (free-pool top-up before a scrub migration);
    /// `gc_page_moves` then counts host-triggered GC only.
    pub maint_gc_page_moves: u64,
    /// ORT lookups answered by a cached per-h-layer `ΔV_Ref` entry.
    pub ort_hits: u64,
    /// ORT lookups that found no cached entry (the read starts from the
    /// default offset).
    pub ort_misses: u64,
    /// ORT entries evicted by the capacity-bounded LRU.
    pub ort_evictions: u64,
    /// ORT lookups (read path and prediction peeks) that fell all the
    /// way back to the default offset 0 — no cached entry and no
    /// cross-block cluster seed.
    pub ort_fallbacks: u64,
    /// ORT misses answered by the cross-block h-layer offset cluster.
    pub cluster_seeds: u64,
    /// Cluster-seeded reads whose decode confirmed the seed exactly.
    pub cluster_hits: u64,
    /// Cluster-seeded reads whose decode landed on a different offset.
    pub cluster_mispredicts: u64,
    /// Host reads whose hopeless retry chain was cut short (seeded walk
    /// abandoned for the default schedule, or a shortened full scan).
    pub early_terminations: u64,
    /// Metadata pages programmed into the reserved checkpoint region by
    /// L2P checkpoint flushes — real NAND wear, counted into total
    /// write amplification.
    pub ckpt_page_programs: u64,
    /// Checkpoint-region block erases (the region is a ring: a block is
    /// recycled whenever cumulative checkpoint pages fill one).
    pub ckpt_erases: u64,
}

impl FtlStats {
    /// Total fault-recovery actions taken (safety re-programs and
    /// demotions, abort re-issues, and faulted-read recoveries).
    pub fn recovery_actions(&self) -> u64 {
        self.safety_reprograms
            + self.safety_demotions
            + self.program_aborts
            + self.stuck_retry_recoveries
            + self.uncorrectable_recoveries
    }

    /// NAND pages written by background maintenance (scrub and
    /// wear-level migrations plus maintenance-triggered GC).
    pub fn maint_page_moves(&self) -> u64 {
        self.scrub_page_moves + self.wear_level_moves + self.maint_gc_page_moves
    }

    /// Total background maintenance actions (block scrubs, wear-level
    /// migrations and OPM re-monitors) — the CLI's background-op count.
    pub fn maint_actions(&self) -> u64 {
        self.scrub_blocks + self.wear_level_moves + self.remonitored_layers
    }

    /// Fraction of ORT lookups served from the table, or `None` when no
    /// lookup happened.
    pub fn ort_hit_rate(&self) -> Option<f64> {
        let total = self.ort_hits + self.ort_misses;
        (total > 0).then(|| self.ort_hits as f64 / total as f64)
    }

    /// Adds every counter of `other` — the array front-end merges
    /// per-shard stats this way, in shard order.
    pub fn accumulate(&mut self, other: &FtlStats) {
        self.host_wl_programs += other.host_wl_programs;
        self.follower_wl_programs += other.follower_wl_programs;
        self.gc_runs += other.gc_runs;
        self.gc_page_moves += other.gc_page_moves;
        self.erases += other.erases;
        self.read_retries += other.read_retries;
        self.nand_reads += other.nand_reads;
        self.safety_reprograms += other.safety_reprograms;
        self.safety_demotions += other.safety_demotions;
        self.program_aborts += other.program_aborts;
        self.stuck_retry_recoveries += other.stuck_retry_recoveries;
        self.uncorrectable_recoveries += other.uncorrectable_recoveries;
        self.host_trims += other.host_trims;
        self.scrub_blocks += other.scrub_blocks;
        self.scrub_page_moves += other.scrub_page_moves;
        self.scrub_sample_reads += other.scrub_sample_reads;
        self.remonitored_layers += other.remonitored_layers;
        self.wear_level_moves += other.wear_level_moves;
        self.maint_gc_page_moves += other.maint_gc_page_moves;
        self.ort_hits += other.ort_hits;
        self.ort_misses += other.ort_misses;
        self.ort_evictions += other.ort_evictions;
        self.ort_fallbacks += other.ort_fallbacks;
        self.cluster_seeds += other.cluster_seeds;
        self.cluster_hits += other.cluster_hits;
        self.cluster_mispredicts += other.cluster_mispredicts;
        self.early_terminations += other.early_terminations;
        self.ckpt_page_programs += other.ckpt_page_programs;
        self.ckpt_erases += other.ckpt_erases;
    }

    /// Registers every counter under `prefix` (e.g. `ftl.gc_runs`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        for (name, value) in [
            ("host_wl_programs", self.host_wl_programs),
            ("follower_wl_programs", self.follower_wl_programs),
            ("gc_runs", self.gc_runs),
            ("gc_page_moves", self.gc_page_moves),
            ("erases", self.erases),
            ("read_retries", self.read_retries),
            ("nand_reads", self.nand_reads),
            ("safety_reprograms", self.safety_reprograms),
            ("safety_demotions", self.safety_demotions),
            ("program_aborts", self.program_aborts),
            ("stuck_retry_recoveries", self.stuck_retry_recoveries),
            ("uncorrectable_recoveries", self.uncorrectable_recoveries),
            ("host_trims", self.host_trims),
            ("scrub_blocks", self.scrub_blocks),
            ("scrub_page_moves", self.scrub_page_moves),
            ("scrub_sample_reads", self.scrub_sample_reads),
            ("remonitored_layers", self.remonitored_layers),
            ("wear_level_moves", self.wear_level_moves),
            ("maint_gc_page_moves", self.maint_gc_page_moves),
            ("ort_hits", self.ort_hits),
            ("ort_misses", self.ort_misses),
            ("ort_evictions", self.ort_evictions),
            ("ort_fallbacks", self.ort_fallbacks),
            ("cluster_seeds", self.cluster_seeds),
            ("cluster_hits", self.cluster_hits),
            ("cluster_mispredicts", self.cluster_mispredicts),
            ("early_terminations", self.early_terminations),
            ("ckpt_page_programs", self.ckpt_page_programs),
            ("ckpt_erases", self.ckpt_erases),
        ] {
            reg.counter(&format!("{prefix}.{name}"), value);
        }
    }
}

/// A flash translation layer drivable by [`SsdSim`](crate::SsdSim).
///
/// Implementations must always succeed on writes — running garbage
/// collection internally when space runs out — and may return `None` from
/// [`FtlDriver::read_page`] only for logical pages that were never
/// written.
pub trait FtlDriver {
    /// Programs up to one WL (3 pages) of host data on `chip`. Entries in
    /// `lpns` may be padded with `u64::MAX` when fewer than 3 pages are
    /// flushed.
    fn write_wl(&mut self, chip: usize, lpns: [u64; 3], ctx: &HostContext) -> WlWrite;

    /// Reads the current mapping of `lpn`. Returns `None` if the page was
    /// never written.
    fn read_page(&mut self, lpn: u64, ctx: &HostContext) -> Option<PageRead>;

    /// Invalidate a logical page (TRIM). Default: ignored.
    fn trim(&mut self, lpn: u64) {
        let _ = lpn;
    }

    /// Performs one bounded unit of background maintenance on an idle
    /// `chip` (scrub one block, migrate one cold block, re-monitor one
    /// h-layer, …) and returns its NAND cost, or `None` when no
    /// maintenance is due there. The simulator calls this only during
    /// chip idle windows, subject to the configured host-priority gap.
    /// Default: the FTL performs no background work.
    fn maintenance_step(&mut self, chip: usize, ctx: &HostContext) -> Option<MaintWork> {
        let _ = (chip, ctx);
        None
    }

    /// FTL-internal counters.
    fn stats(&self) -> FtlStats;

    /// Free blocks currently available across all chips — sampled into
    /// the telemetry time series. Default: 0 (unknown).
    fn free_blocks(&self) -> u64 {
        0
    }

    /// Short name for reports (e.g. `"cubeFTL"`).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftl_stats_default_is_zeroed() {
        let s = FtlStats::default();
        assert_eq!(s.host_wl_programs, 0);
        assert_eq!(s.gc_runs, 0);
        assert_eq!(s.read_retries, 0);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &mut dyn FtlDriver) {}
    }
}
