//! # ssdsim — an event-driven SSD timing simulator
//!
//! This crate reproduces the role of the unified SSD development platform
//! the paper evaluates on (§6.1, FlashBench \[23\]): it turns per-operation
//! NAND latencies into end-to-end IOPS and request latencies under
//! queueing, bus contention and write-buffer dynamics.
//!
//! The simulator is a closed-loop host model: it keeps a fixed number of
//! outstanding requests (the queue depth) against an SSD built from
//!
//! * a [`FtlDriver`] — the flash translation layer under test (the
//!   `ftl` crate provides `pageFTL`, `vertFTL`, `cubeFTL` and
//!   `cubeFTL-`),
//! * a DRAM [`WriteBuffer`] whose utilization `μ` feeds cubeFTL's WL
//!   allocation manager (§5.2), and
//! * a channel/chip topology (2 buses × 4 chips in the paper
//!   configuration) with per-chip FIFO queues and per-bus transfer
//!   serialization.
//!
//! Outputs are collected in a [`SimReport`]: IOPS, read/write latency
//! distributions (for the CDFs of Fig. 18) and FTL-internal counters.

pub mod buffer;
pub mod driver;
pub mod front;
pub mod request;
pub mod ssd;
pub mod stats;

pub use buffer::WriteBuffer;
pub use driver::{FtlDriver, FtlStats, HostContext, MaintWork, PageRead, WlWrite};
pub use front::{FrontRequest, HostFront};
pub use request::{HostOp, HostRequest};
pub use ssd::{
    ChipStats, InFlightFlush, MaintSchedule, RebuildOp, RebuildProgress, RebuildSchedule,
    SimReport, SpoEvent, SpoTrigger, SsdConfig, SsdSim, StepOutcome,
};
pub use stats::LatencyRecorder;
