//! §4.2.2-closure acceptance suite: the v2 read pipeline (cross-block
//! ΔV_Ref cluster seeding + retry-chain optimization) end to end.
//!
//! Locks in the three contracts of the pipeline:
//!
//! * **conservative off-switch** — `--ort-cluster off --retry-opt off`
//!   (the defaults) reproduce the pre-cluster pipeline bit for bit,
//!   pinned by the same golden constants as `determinism.rs`;
//! * **the NumRetry bar** — under an SRAM-bounded ORT the v2 pipeline
//!   removes ≥66% of NumRetry at the aged EndOfLife state, and never
//!   regresses fresh or mid-life states;
//! * **determinism** — the retry-chain NDJSON trace is byte-identical
//!   across double runs, across array worker-thread counts, and under
//!   both bounded and unbounded `--ort-capacity`, with a golden
//!   snapshot (`tests/data/golden_retry.ndjson`, regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test retry_cluster`).

use cubeftl::harness::{
    run_array_eval_traced, run_eval, run_eval_traced, run_spo_eval, ArrayEvalConfig, EvalConfig,
    SpoConfig, TelemetrySpec,
};
use cubeftl::{
    events_to_ndjson, AgingState, EventMask, FtlKind, OrtClusterConfig, RetryOptConfig,
    StandardWorkload,
};

/// The smoke config with the ORT bounded to model scarce controller
/// SRAM — LRU eviction keeps producing the cold lookups the cluster
/// targets — and enough read traffic to warm the cluster.
fn bounded_cfg(requests: u64) -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = requests;
    cfg.ort_capacity = 4;
    cfg
}

/// `bounded_cfg` with the full v2 pipeline on.
fn v2_cfg(requests: u64) -> EvalConfig {
    let mut cfg = bounded_cfg(requests);
    cfg.ort_cluster = OrtClusterConfig::on();
    cfg.retry_opt = RetryOptConfig::on();
    cfg
}

fn retry_tel() -> TelemetrySpec {
    TelemetrySpec {
        events: EventMask::READ_RETRY,
        sample_interval_us: None,
    }
}

/// NumRetry of one Rocks run at `aging` under `cfg`.
fn num_retry(cfg: &EvalConfig, aging: AgingState) -> u64 {
    run_eval(FtlKind::Cube, StandardWorkload::Rocks, aging, cfg)
        .ftl
        .read_retries
}

#[test]
fn cluster_off_reproduces_the_pre_pr_golden() {
    // The defaults (cluster off, retry-opt off) must keep the golden
    // smoke report of determinism.rs intact — same constants, same
    // pipeline, bit for bit.
    let cfg = EvalConfig::smoke();
    assert!(!cfg.ort_cluster.enabled, "the cluster must default to off");
    assert_eq!(cfg.retry_opt, RetryOptConfig::default());
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
    );
    assert_eq!(r.completed, 2_000);
    assert_eq!((r.reads, r.writes, r.trims), (999, 939, 62));
    assert_eq!(r.ftl.host_wl_programs, 312);
    assert_eq!(r.ftl.gc_page_moves, 0);
    assert_eq!(r.ftl.read_retries, 0);
    assert_eq!(r.ftl.safety_reprograms, 0);

    // An explicit `--ort-cluster off --retry-opt off` is the same
    // configuration, not merely a similar one: the full report (every
    // counter, every latency sample) matches the default run exactly.
    let mut explicit_off = EvalConfig::smoke();
    explicit_off.ort_cluster = OrtClusterConfig::default();
    explicit_off.retry_opt = RetryOptConfig::default();
    let r2 = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &explicit_off,
    );
    assert_eq!(
        format!("{r:?}"),
        format!("{r2:?}"),
        "explicit off-switches diverged from the defaults"
    );
}

#[test]
fn cold_start_vs_cluster_seeded_numretry_across_states() {
    let baseline = bounded_cfg(15_000);
    let v2 = v2_cfg(15_000);

    // Fresh: nothing retries, so there is nothing to seed or optimize —
    // the v2 pipeline must not disturb a retry-free run.
    assert_eq!(num_retry(&baseline, AgingState::Fresh), 0);
    assert_eq!(num_retry(&v2, AgingState::Fresh), 0);

    // MidLife: retries exist and v2 must already help.
    let base_mid = num_retry(&baseline, AgingState::MidLife);
    let v2_mid = num_retry(&v2, AgingState::MidLife);
    assert!(base_mid > 0, "mid-life must produce retries");
    assert!(
        v2_mid < base_mid,
        "v2 must reduce mid-life NumRetry ({v2_mid} vs {base_mid})"
    );

    // EndOfLife: the tentpole bar — ≥66% of NumRetry removed.
    let base_eol = num_retry(&baseline, AgingState::EndOfLife);
    let v2_eol = num_retry(&v2, AgingState::EndOfLife);
    let reduction = 1.0 - v2_eol as f64 / base_eol.max(1) as f64;
    assert!(
        reduction >= 0.66,
        "v2 must cut NumRetry by >= 66% at EndOfLife, got {:.1}% ({base_eol} -> {v2_eol})",
        reduction * 100.0
    );
}

#[test]
fn cluster_seeding_marks_the_trace_and_feeds_the_counters() {
    // The seeded/early_term event tags and the aggregate counters must
    // tell the same story: seeded retry events appear iff the cluster
    // seeded lookups, and the trace's NumRetry equals the counter.
    let cfg = v2_cfg(15_000);
    let (report, out) = run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::EndOfLife,
        &cfg,
        &retry_tel(),
    );
    let mut num = 0u64;
    let mut seeded = 0u64;
    for e in &out.events {
        if let cubeftl::EventKind::ReadRetry {
            retries, seeded: s, ..
        } = e.kind
        {
            num += u64::from(retries);
            seeded += u64::from(s);
        }
    }
    assert_eq!(num, report.ftl.read_retries, "trace vs counter NumRetry");
    assert!(seeded > 0, "aged + bounded ORT must produce seeded retries");
    assert!(
        report.ftl.cluster_seeds >= seeded,
        "every seeded retry event starts from a seeded lookup ({seeded} events, {} seeds)",
        report.ftl.cluster_seeds
    );
    assert!(
        report.ftl.cluster_hits + report.ftl.cluster_mispredicts > 0,
        "seeded outcomes must be scored"
    );
}

#[test]
fn post_spo_boot_reseeds_from_the_rebuilt_cluster() {
    // After a power cut the ORT boots empty and the cluster is rebuilt
    // from live decodes — the resumed run must then seed its cold
    // lookups again, and the whole crash path stays deterministic with
    // the v2 pipeline on.
    let cfg = v2_cfg(2_000);
    let spo = SpoConfig::at_ops(1_100);
    let run = || {
        run_spo_eval(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::EndOfLife,
            &cfg,
            &spo,
        )
    };
    let (a, b) = (run(), run());
    assert!(a.fired(), "the armed trigger must fire");
    assert!(a.lost_lpns.is_empty(), "no host-acknowledged loss");
    let resumed = a.resumed.as_ref().expect("workload had a remainder");
    assert!(
        resumed.ftl.cluster_seeds > 0,
        "the rebuilt cluster must seed cold post-SPO lookups"
    );
    assert_eq!(
        format!("{:?}", a.recovery),
        format!("{:?}", b.recovery),
        "recovery reports diverged with the v2 pipeline on"
    );
    assert_eq!(
        format!("{:?}", a.resumed),
        format!("{:?}", b.resumed),
        "post-recovery resumed runs diverged with the v2 pipeline on"
    );
}

/// Golden-file comparison with `UPDATE_GOLDEN=1` regeneration (same
/// convention as `tests/telemetry.rs`).
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        golden, actual,
        "{name} drifted from the golden snapshot; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_retry_trace_is_stable_and_double_run_identical() {
    // A short aged v2 run keeps the committed snapshot small while still
    // covering seeded, unseeded and early-terminated chains.
    let cfg = v2_cfg(800);
    let trace = |cfg: &EvalConfig| {
        let (_, out) = run_eval_traced(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::MidLife,
            cfg,
            &retry_tel(),
        );
        events_to_ndjson(&out.events)
    };
    let a = trace(&cfg);
    assert_eq!(a, trace(&cfg), "double run diverged");
    check_golden("golden_retry.ndjson", &a);
}

/// Shard count under test: `CUBEFTL_SHARDS` if set (CI runs the suite
/// once with 4, matching `tests/array.rs`), else 2 to keep the default
/// run fast.
fn shards_under_test() -> usize {
    std::env::var("CUBEFTL_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(2)
}

#[test]
fn retry_trace_is_thread_count_invariant() {
    // N shards at 1 vs N worker threads with the v2 pipeline on: the
    // concatenated retry trace must be byte-identical — per-shard
    // clusters are isolated, so fan-out order cannot leak in.
    let shards = shards_under_test();
    let cfg = v2_cfg(4_000);
    let run = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(shards);
        arr.threads = threads;
        run_array_eval_traced(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::EndOfLife,
            &cfg,
            &arr,
            &retry_tel(),
        )
    };
    let (ra, ta) = run(1);
    let (rb, tb) = run(shards);
    assert_eq!(
        events_to_ndjson(&ta.events),
        events_to_ndjson(&tb.events),
        "array retry trace diverged across thread counts"
    );
    assert_eq!(
        format!("{:?}", ra.merged),
        format!("{:?}", rb.merged),
        "merged report diverged across thread counts"
    );
}

#[test]
fn retry_trace_is_deterministic_at_any_ort_capacity() {
    // Bounded and unbounded tables each reproduce their own trace
    // byte-for-byte — and the traces differ from each other, proving
    // the capacity knob actually changes eviction behaviour.
    let run = |capacity: usize| {
        let mut cfg = v2_cfg(6_000);
        cfg.ort_capacity = capacity;
        let (_, out) = run_eval_traced(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::EndOfLife,
            &cfg,
            &retry_tel(),
        );
        events_to_ndjson(&out.events)
    };
    let bounded = run(4);
    assert_eq!(bounded, run(4), "bounded double run diverged");
    let unbounded = run(usize::MAX);
    assert_eq!(unbounded, run(usize::MAX), "unbounded double run diverged");
    assert_ne!(
        bounded, unbounded,
        "capacity 4 and unbounded must evict differently under load"
    );
}
