//! End-to-end sudden-power-off recovery: the acceptance tests for the
//! crash-consistency subsystem.
//!
//! The double-run harness ([`run_spo_eval`]) runs the same seeded
//! workload twice — once uninterrupted (golden), once cut short by the
//! armed trigger — then applies the power-cut physics (torn WL
//! programs, interrupted erases), boots a fresh FTL from flash contents
//! alone ([`cubeftl::Ftl::power_cycle`]) and resumes the remainder. The
//! contract under test:
//!
//! * **zero host-acknowledged data loss** — every LPN that was mapped
//!   or PLP-buffer-resident at the cut is mapped after recovery;
//! * **bounded recovery scan** — with periodic checkpoints, recovery
//!   fully OOB-scans only the blocks programmed since the last
//!   checkpoint, not the whole array;
//! * **cold monitored state** — the OPM/ORT are rebuilt from nothing
//!   (re-monitored on first touch per h-layer), never deserialized.

use cubeftl::harness::{run_spo_eval, EvalConfig, SpoConfig, SpoEvalReport};
use cubeftl::{AgingState, FtlKind, SpoTrigger, StandardWorkload};

fn spo_run(kind: FtlKind, cut_at: u64, ckpt_interval: u64) -> SpoEvalReport {
    let cfg = EvalConfig::smoke();
    let spo = SpoConfig {
        trigger: SpoTrigger::AtOps(cut_at),
        ckpt_interval_host_wls: ckpt_interval,
    };
    run_spo_eval(
        kind,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
        &spo,
    )
}

#[test]
fn spo_recovery_loses_no_acknowledged_write() {
    for kind in [FtlKind::Page, FtlKind::Cube] {
        let r = spo_run(kind, 900, 64);
        assert!(
            r.fired(),
            "{}: trigger armed at op 900 must fire",
            kind.name()
        );
        let rec = r.recovery.expect("recovery ran");
        assert!(
            r.lost_lpns.is_empty(),
            "{}: lost host-acknowledged LPNs {:?} (recovery: {rec:?})",
            kind.name(),
            r.lost_lpns
        );
        // The cut happened mid-traffic: something must have actually been
        // at risk, otherwise the test proves nothing.
        let spo = r.spo.as_ref().expect("event captured");
        assert!(spo.completed >= 900, "cut after 900 completions");
        assert!(
            !spo.buffered_lpns.is_empty() || !spo.interrupted_flushes.is_empty(),
            "{}: the cut should catch in-flight state",
            kind.name()
        );
        assert_eq!(
            rec.plp_pages_replayed,
            spo.buffered_lpns.len() as u64,
            "every PLP-dumped page is re-written during recovery"
        );
        // The resumed run drains the workload remainder.
        let resumed = r.resumed.as_ref().expect("workload had a remainder");
        assert!(resumed.completed > 0);
    }
}

#[test]
fn recovery_rebuilds_map_from_checkpoint_plus_bounded_scan() {
    let r = spo_run(FtlKind::Cube, 1200, 32);
    assert!(r.fired());
    let rec = r.recovery.expect("recovery ran");
    assert!(
        r.checkpoints_taken > 0,
        "interval 32 must checkpoint before op 1200"
    );
    assert!(rec.checkpoint_loaded, "recovery must find the checkpoint");
    assert!(
        rec.ckpt_entries_restored > 0,
        "the bulk of the map comes from the checkpoint"
    );
    // Every block gets one metadata-page probe; only the ones programmed
    // since the checkpoint get the full OOB scan.
    assert_eq!(rec.blocks_probed, r.total_blocks);
    assert!(
        rec.blocks_scanned < r.total_blocks,
        "scan must be bounded: {} of {} blocks scanned",
        rec.blocks_scanned,
        r.total_blocks
    );
    assert!(rec.nand_us > 0.0, "recovery charges NAND time");
}

#[test]
fn without_checkpoints_recovery_scans_more_but_still_loses_nothing() {
    let with_ckpt = spo_run(FtlKind::Cube, 1000, 32);
    let without = spo_run(FtlKind::Cube, 1000, 0);
    assert!(with_ckpt.fired() && without.fired());
    let (a, b) = (
        with_ckpt.recovery.expect("recovery ran"),
        without.recovery.expect("recovery ran"),
    );
    assert!(!b.checkpoint_loaded, "interval 0 disables checkpointing");
    assert_eq!(b.ckpt_entries_restored, 0);
    assert!(
        b.blocks_scanned > a.blocks_scanned,
        "no checkpoint ⇒ every written block is scanned ({} vs {})",
        b.blocks_scanned,
        a.blocks_scanned
    );
    assert!(
        b.oob_records_replayed > a.oob_records_replayed,
        "the whole map is rebuilt from OOB replay alone"
    );
    assert!(without.lost_lpns.is_empty(), "OOB replay alone is lossless");
}

#[test]
fn torn_wls_are_quarantined_and_their_layers_demoted() {
    // A late cut on the cube FTL: flush batches are in flight on several
    // chips, so their WLs are torn and (for the PS-aware FTL) their
    // h-layers must boot demoted.
    let r = spo_run(FtlKind::Cube, 1500, 64);
    let spo = r.spo.as_ref().expect("event captured");
    let rec = r.recovery.expect("recovery ran");
    if spo.interrupted_flushes.is_empty() {
        // Nothing was in flight at this cut point: nothing to quarantine.
        assert_eq!(rec.torn_wls_quarantined, 0);
        return;
    }
    assert!(
        rec.torn_wls_quarantined > 0,
        "in-flight flushes {:?} must tear WLs",
        spo.interrupted_flushes
    );
    assert!(
        rec.layers_demoted > 0,
        "cubeFTL quarantines torn WLs' h-layers via the §4.1.4 path"
    );
    assert!(
        r.lost_lpns.is_empty(),
        "torn data is PLP-replayed, not lost"
    );
}

#[test]
fn seeded_random_trigger_is_reproducible() {
    let cfg = EvalConfig::smoke();
    let spo = SpoConfig {
        trigger: SpoTrigger::Seeded {
            seed: 0xB007,
            rate: 0.002,
        },
        ckpt_interval_host_wls: 64,
    };
    let a = run_spo_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &spo,
    );
    let b = run_spo_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &spo,
    );
    assert_eq!(
        a.spo, b.spo,
        "same SPO seed ⇒ identical cut point and device snapshot"
    );
    if a.fired() {
        assert_eq!(format!("{:?}", a.recovery), format!("{:?}", b.recovery));
        assert!(a.lost_lpns.is_empty());
    }
}

#[test]
fn unfired_trigger_leaves_the_run_untouched() {
    // A trigger beyond the request count never fires; the truncated run
    // must equal the golden run bit-for-bit (the SPO machinery may not
    // perturb the event path when dormant).
    let r = spo_run(FtlKind::Cube, u64::MAX, 64);
    assert!(!r.fired());
    assert!(r.recovery.is_none() && r.resumed.is_none());
    assert_eq!(format!("{:?}", r.golden), format!("{:?}", r.pre_cut));
    assert!(r.lost_lpns.is_empty());
}
