//! Cross-crate integration tests: workloads → simulator → FTL → NAND.

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FtlKind, StandardWorkload};

fn smoke() -> EvalConfig {
    EvalConfig::smoke()
}

#[test]
fn every_ftl_completes_every_workload_fresh() {
    let cfg = smoke();
    for kind in FtlKind::ALL {
        for workload in StandardWorkload::ALL {
            let r = run_eval(kind, workload, AgingState::Fresh, &cfg);
            assert_eq!(
                r.completed,
                cfg.requests,
                "{} under {} lost requests",
                kind.name(),
                workload.label()
            );
            assert!(r.iops > 0.0);
        }
    }
}

#[test]
fn every_ftl_survives_end_of_life() {
    let cfg = smoke();
    for kind in FtlKind::ALL {
        let r = run_eval(kind, StandardWorkload::Mail, AgingState::EndOfLife, &cfg);
        assert_eq!(r.completed, cfg.requests, "{}", kind.name());
    }
}

#[test]
fn aged_reads_are_slower_for_the_ps_unaware_baseline() {
    // §6.2: read retries appear with aging and hurt pageFTL.
    let cfg = smoke();
    let fresh = run_eval(
        FtlKind::Page,
        StandardWorkload::Web,
        AgingState::Fresh,
        &cfg,
    );
    let aged = run_eval(
        FtlKind::Page,
        StandardWorkload::Web,
        AgingState::EndOfLife,
        &cfg,
    );
    assert_eq!(fresh.ftl.read_retries, 0, "fresh state must not retry");
    assert!(aged.ftl.read_retries > 0, "EOL must retry");
    assert!(aged.iops < fresh.iops, "retries must cost IOPS");
}

#[test]
fn cube_reduces_retries_against_page_at_end_of_life() {
    let cfg = smoke();
    let page = run_eval(
        FtlKind::Page,
        StandardWorkload::Proxy,
        AgingState::EndOfLife,
        &cfg,
    );
    let cube = run_eval(
        FtlKind::Cube,
        StandardWorkload::Proxy,
        AgingState::EndOfLife,
        &cfg,
    );
    // Normalize per NAND read (the FTLs may issue different GC reads).
    let page_rate = page.ftl.read_retries as f64 / page.ftl.nand_reads.max(1) as f64;
    let cube_rate = cube.ftl.read_retries as f64 / cube.ftl.nand_reads.max(1) as f64;
    assert!(
        cube_rate < 0.55 * page_rate,
        "retry rate: cube {cube_rate:.3} vs page {page_rate:.3} (paper: −66%)"
    );
}

#[test]
fn cube_uses_followers_page_does_not_optimize() {
    let cfg = smoke();
    let cube = run_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
    );
    assert!(
        cube.ftl.follower_wl_programs * 2 > cube.ftl.host_wl_programs,
        "cubeFTL should serve most OLTP writes from follower WLs"
    );
}

#[test]
fn vert_beats_page_cube_beats_vert_on_writes() {
    // Fig. 17(a) ordering for a write-heavy workload.
    let cfg = smoke();
    let page = run_eval(
        FtlKind::Page,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
    );
    let vert = run_eval(
        FtlKind::Vert,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
    );
    let cube = run_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
    );
    assert!(
        vert.iops > page.iops,
        "vertFTL {} vs pageFTL {}",
        vert.iops,
        page.iops
    );
    assert!(
        cube.iops > vert.iops,
        "cubeFTL {} vs vertFTL {}",
        cube.iops,
        vert.iops
    );
}

#[test]
fn reports_are_internally_consistent() {
    let cfg = smoke();
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mongo,
        AgingState::MidLife,
        &cfg,
    );
    assert_eq!(r.reads + r.writes, r.completed);
    assert_eq!(r.read_latency.len() as u64, r.reads);
    assert_eq!(r.write_latency.len() as u64, r.writes);
    assert!(r.sim_time_us > 0.0);
    let computed_iops = r.completed as f64 / (r.sim_time_us / 1e6);
    assert!((computed_iops - r.iops).abs() / r.iops < 1e-9);
}

#[test]
fn trims_flow_through_the_stack_and_reduce_gc_work() {
    // The Rocks workload TRIMs compacted SSTable ranges; the trimmed
    // pages become migration-free garbage, so GC moves fewer valid
    // pages than it would if the same stream carried no TRIMs.
    let mut cfg = EvalConfig::reduced();
    cfg.requests = 20_000;
    cfg.prefill_fraction = 0.95;
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Rocks,
        AgingState::Fresh,
        &cfg,
    );
    assert!(r.trims > 0, "Rocks must issue TRIMs");
    assert!(r.ftl.host_trims > 0, "TRIMs must reach the FTL mapping");
    assert_eq!(r.completed, cfg.requests);
}

#[test]
fn write_amplification_exceeds_one_under_gc() {
    let mut cfg = EvalConfig::reduced();
    cfg.requests = 70_000;
    cfg.prefill_fraction = 0.97;
    // Mongo's random leaf updates scatter invalidations, so GC victims
    // carry valid pages to migrate (unlike pure log overwrites, which
    // invalidate whole blocks and make GC free).
    let r = run_eval(
        FtlKind::Page,
        StandardWorkload::Mongo,
        AgingState::Fresh,
        &cfg,
    );
    let wa = r.write_amplification().expect("Mongo writes");
    assert!(r.ftl.gc_runs > 0);
    assert!(wa > 1.0, "GC migrations must amplify writes: {wa}");
    assert!(
        wa < 4.0,
        "WA {wa} implausibly high for 12.5% OP at this utilization"
    );
}

#[test]
fn mail_deletes_files_via_trim() {
    let cfg = smoke();
    let r = run_eval(
        FtlKind::Page,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
    );
    assert!(r.trims > 0, "varmail constantly deletes mail files");
}

#[test]
fn larger_scale_run_is_stable() {
    // One reduced-scale cell as a deeper smoke test (GC active).
    let mut cfg = EvalConfig::reduced();
    cfg.requests = 25_000;
    cfg.prefill_fraction = 0.95;
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
    );
    assert_eq!(r.completed, cfg.requests);
    assert!(
        r.ftl.gc_runs > 0,
        "reduced scale at 0.95 prefill must trigger GC"
    );
}

#[test]
fn write_heavy_trace_survives_a_lifetime_epoch() {
    // The write-heavy MSR usr trace replayed inside a fast-forward
    // aging campaign: the full stack (trace folding -> simulator -> FTL
    // -> per-block NAND aging) holds together when the device ages
    // between replays.
    use cubeftl::harness::run_lifetime_trace_eval;
    use cubeftl::{LifetimeConfig, Trace};

    let cfg = smoke();
    let text =
        std::fs::read_to_string("tests/data/traces/msr_usr_wr.csv").expect("usr trace present");
    let trace = Trace::from_msr_csv(&text, 16 * 1024, 1 << 40).expect("usr trace parses");
    let mut life = LifetimeConfig::campaign();
    life.epochs = 2;
    let r = run_lifetime_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &life, &trace);
    assert_eq!(r.epochs.len(), 2);
    assert_eq!(r.summaries.len(), 1, "one aging step between the replays");
    assert!(r.summaries[0].blocks_aged > 0);
    for rep in &r.epochs {
        assert_eq!(rep.completed, trace.len() as u64);
        assert!(rep.writes > rep.reads, "the usr volume is write-heavy");
    }
}
