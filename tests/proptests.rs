//! Property-based tests on the core data structures and invariants.

use cubeftl::{FtlConfig, FtlDriver, Geometry, ProgramOrder};
use ftl::{Checkpoint, Ftl, FtlKind, Mapping, OffsetLookup, Opm, OrtClusterConfig, Ppn};
use nand3d::{
    BlockId, CalibratedModel, Environment, FaultKind, FaultPlan, OobStatus, ProcessModel,
    ReadParams, RetryEngine, RetryOptConfig, WlOob,
};
use proptest::prelude::*;
use ssdsim::{HostContext, WriteBuffer};
use std::collections::{HashMap, HashSet};

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (1u32..6, 2u16..12, 2u16..6).prop_map(|(blocks, hlayers, wls)| Geometry {
        blocks_per_chip: blocks,
        hlayers_per_block: hlayers,
        wls_per_hlayer: wls,
        pages_per_wl: 3,
        page_size: 16 * 1024,
    })
}

/// An arbitrary seeded fault plan mixing all five fault classes at
/// moderate rates.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000_000,
        0.0f64..0.05,
        0.0f64..0.05,
        0.0f64..0.05,
        0.0f64..0.05,
        0.0f64..0.03,
    )
        .prop_map(|(seed, outlier, spike, stuck, uncorr, abort)| {
            FaultPlan::seeded(seed)
                .with_rate(FaultKind::IsppLoopOutlier, outlier)
                .with_rate(FaultKind::BerSpike, spike)
                .with_rate(FaultKind::StuckRetry, stuck)
                .with_rate(FaultKind::UncorrectableRead, uncorr)
                .with_rate(FaultKind::ProgramAbort, abort)
        })
}

proptest! {
    /// Every program order visits every WL of a block exactly once, and
    /// never schedules a follower before its h-layer's leader.
    #[test]
    fn program_orders_are_leader_first_permutations(g in arb_geometry(), order_idx in 0usize..3) {
        let order = ProgramOrder::ALL[order_idx];
        let block = BlockId(0);
        let mut seen = HashSet::new();
        let mut leader_done = vec![false; g.hlayers_per_block as usize];
        let mut count = 0u32;
        for wl in order.sequence(&g, block) {
            prop_assert!(g.contains_wl(wl));
            prop_assert!(seen.insert(wl), "duplicate WL {wl}");
            if wl.is_leader() {
                leader_done[wl.h.0 as usize] = true;
            } else {
                prop_assert!(leader_done[wl.h.0 as usize], "follower {wl} before leader");
            }
            count += 1;
        }
        prop_assert_eq!(count, g.wls_per_block());
    }

    /// Page address flattening is a bijection for arbitrary geometries.
    #[test]
    fn page_flat_roundtrips(g in arb_geometry(), flat in 0usize..10_000) {
        let flat = flat % g.pages_per_chip() as usize;
        let addr = g.page_unflat(flat);
        prop_assert!(g.contains_page(addr));
        prop_assert_eq!(g.page_flat(addr), flat);
    }

    /// The mapping table never loses or duplicates pages under arbitrary
    /// map/unmap sequences.
    #[test]
    fn mapping_is_consistent(ops in prop::collection::vec((0u64..64, 0u32..200), 1..200)) {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 64);
        let mut shadow: HashMap<u64, u32> = HashMap::new();
        let mut used: HashSet<u32> = HashSet::new();
        for (lpn, page_seed) in ops {
            // Pick a fresh physical page (never reused without erase).
            let page = (0..g.pages_per_chip() as u32)
                .map(|i| (page_seed + i) % g.pages_per_chip() as u32)
                .find(|p| !used.contains(p));
            let Some(page) = page else { break };
            used.insert(page);
            if let Some(old) = shadow.insert(lpn, page) {
                // The mapping must report the overwritten location.
                prop_assert_eq!(m.map(lpn, Ppn { chip: 0, page }), Some(Ppn { chip: 0, page: old }));
            } else {
                prop_assert_eq!(m.map(lpn, Ppn { chip: 0, page }), None);
            }
        }
        // Forward and reverse agree with the shadow model.
        prop_assert_eq!(m.total_valid(), shadow.len() as u64);
        for (lpn, page) in &shadow {
            prop_assert_eq!(m.lookup(*lpn), Some(Ppn { chip: 0, page: *page }));
            prop_assert_eq!(m.reverse(Ppn { chip: 0, page: *page }), Some(*lpn));
        }
    }

    /// The write buffer's fill accounting never leaks slots across
    /// arbitrary push/flush/complete interleavings.
    #[test]
    fn write_buffer_conserves_slots(ops in prop::collection::vec((0u64..32, prop::bool::ANY), 1..300)) {
        let mut b = WriteBuffer::new(16);
        let mut in_flight: Vec<[u64; 3]> = Vec::new();
        for (lpn, flush) in ops {
            if flush {
                if let Some(batch) = b.take_for_flush(1) {
                    in_flight.push(batch);
                }
                // Complete the oldest in-flight flush half the time.
                if in_flight.len() > 1 {
                    let batch = in_flight.remove(0);
                    b.complete_flush(batch);
                }
            } else {
                let _ = b.push(lpn);
            }
            prop_assert!(b.fill() <= b.capacity());
        }
        // Drain everything; fill must return to the queued remainder.
        for batch in in_flight.drain(..) {
            b.complete_flush(batch);
        }
        prop_assert_eq!(b.fill(), b.queued());
    }

    /// Read-your-writes: after an arbitrary write sequence, every written
    /// LPN maps to readable data, for every FTL variant.
    #[test]
    fn ftl_read_your_writes(
        lpns in prop::collection::vec(0u64..500, 30..120),
        kind_idx in 0usize..4,
    ) {
        let kind = FtlKind::ALL[kind_idx];
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(kind, cfg);
        let ctx = HostContext { buffer_utilization: 0.5, now_us: 0.0 };
        let mut written = HashSet::new();
        for chunk in lpns.chunks(3) {
            let mut batch = [u64::MAX; 3];
            // Deduplicate within a WL: one WL cannot hold one LPN twice.
            let mut chunk_seen = HashSet::new();
            for (i, lpn) in chunk.iter().enumerate() {
                if chunk_seen.insert(*lpn) {
                    batch[i] = *lpn;
                    written.insert(*lpn);
                }
            }
            ftl.write_wl((chunk[0] % 2) as usize, batch, &ctx);
        }
        for lpn in &written {
            prop_assert!(ftl.read_page(*lpn, &ctx).is_some(), "{}: lost {lpn}", kind.name());
        }
        // Unwritten pages stay unmapped.
        prop_assert!(ftl.read_page(9999, &ctx).is_none());
    }

    /// Read-your-writes holds under ANY seeded fault plan, for every FTL
    /// variant: no host read ever returns wrong data (the FTL
    /// debug-asserts page content == LPN on every NAND read, so a
    /// corrupted read panics the case), written pages stay mapped,
    /// unwritten pages stay unmapped, and the write accounting is exact.
    #[test]
    fn ftl_reads_survive_arbitrary_fault_plans(
        lpns in prop::collection::vec(0u64..400, 30..120),
        kind_idx in 0usize..4,
        plan in arb_fault_plan(),
    ) {
        let kind = FtlKind::ALL[kind_idx];
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(kind, cfg);
        ftl.set_fault_plan(&plan);
        let ctx = HostContext { buffer_utilization: 0.5, now_us: 0.0 };
        let mut written = HashSet::new();
        let mut calls = 0u64;
        for chunk in lpns.chunks(3) {
            let mut batch = [u64::MAX; 3];
            let mut chunk_seen = HashSet::new();
            for (i, lpn) in chunk.iter().enumerate() {
                if chunk_seen.insert(*lpn) {
                    batch[i] = *lpn;
                    written.insert(*lpn);
                }
            }
            ftl.write_wl((chunk[0] % 2) as usize, batch, &ctx);
            calls += 1;
        }
        let stats = ftl.stats();
        // Aborts and safety re-programs re-issue internally; each host
        // call still lands exactly one WL.
        prop_assert_eq!(stats.host_wl_programs, calls);
        for lpn in &written {
            prop_assert!(ftl.read_page(*lpn, &ctx).is_some(), "{}: lost {lpn}", kind.name());
        }
        prop_assert!(ftl.read_page(9999, &ctx).is_none());
        // Every injected fault of the recoverable classes maps 1:1 to a
        // recovery action in the stats.
        let c = ftl.fault_counters();
        let stats = ftl.stats();
        prop_assert_eq!(stats.program_aborts, c.program_aborts);
        prop_assert_eq!(stats.stuck_retry_recoveries, c.stuck_retries);
        prop_assert_eq!(stats.uncorrectable_recoveries, c.uncorrectable_reads);
    }

    /// Garbage collection under fault injection neither loses data nor
    /// stalls: sustained overwrites past physical capacity still trigger
    /// GC, and the working set remains fully readable.
    #[test]
    fn gc_with_faults_preserves_data(seed in 0u64..10_000) {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        let plan = FaultPlan::seeded(seed)
            .with_rate(FaultKind::BerSpike, 0.02)
            .with_rate(FaultKind::ProgramAbort, 0.01)
            .with_rate(FaultKind::UncorrectableRead, 0.02);
        ftl.set_fault_plan(&plan);
        let ctx = HostContext { buffer_utilization: 0.7, now_us: 0.0 };
        let working_set = 150u64;
        let total = cfg.nand.geometry.pages_per_chip() * cfg.chips as u64 * 2;
        let mut batch = [u64::MAX; 3];
        let mut n = 0;
        for i in 0..total {
            batch[n] = i % working_set;
            n += 1;
            if n == 3 {
                ftl.write_wl((i % cfg.chips as u64) as usize, batch, &ctx);
                batch = [u64::MAX; 3];
                n = 0;
            }
        }
        prop_assert!(ftl.stats().gc_runs > 0, "GC never ran");
        for lpn in 0..working_set {
            prop_assert!(ftl.read_page(lpn, &ctx).is_some(), "lost {lpn}");
        }
    }

    /// A fault plan is a pure function of its seed: replaying the same
    /// plan over the same workload reproduces every counter exactly.
    #[test]
    fn fault_plans_are_deterministic(plan in arb_fault_plan()) {
        let run = |plan: &FaultPlan| {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::cube(cfg);
            ftl.set_fault_plan(plan);
            let ctx = HostContext { buffer_utilization: 0.7, now_us: 0.0 };
            for i in 0..60u64 {
                ftl.write_wl((i % 2) as usize, [i * 3, i * 3 + 1, i * 3 + 2], &ctx);
            }
            for lpn in 0..180u64 {
                ftl.read_page(lpn, &ctx);
            }
            (ftl.stats(), ftl.fault_counters())
        };
        prop_assert_eq!(run(&plan), run(&plan));
    }

    /// The latency recorder's percentile is monotone and bounded by the
    /// sample extremes.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut r = ssdsim::LatencyRecorder::new();
        for s in &samples {
            r.record(*s);
        }
        let mut prev = 0.0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = r.percentile(p);
            prop_assert!(v >= prev);
            prev = v;
        }
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((r.percentile(100.0) - max).abs() < 1e-12);
    }

    /// Zipfian samples stay in range for arbitrary domains and seeds.
    #[test]
    fn zipf_in_range(n in 1u64..100_000, seed in 0u64..1000) {
        let mut z = workloads::Zipfian::ycsb(n, seed);
        for _ in 0..100 {
            prop_assert!(z.sample() < n);
        }
    }

    /// L2P checkpoints survive encode/decode byte-identically for
    /// arbitrary maps, erase-count matrices and sequence numbers — the
    /// crash-recovery path depends on this blob being self-describing.
    #[test]
    fn checkpoint_roundtrips(
        seq in 0u64..u64::MAX,
        entries in prop::collection::vec((0u64..3, 0u32..8, 0u32..10_000), 0..120),
        chips in 1usize..4,
        blocks in 0usize..24,
        counts in prop::collection::vec(0u32..100_000, 0..96),
    ) {
        let l2p: Vec<Option<Ppn>> = entries
            .iter()
            .map(|&(tag, chip, page)| (tag != 0).then_some(Ppn { chip, page }))
            .collect();
        let erase_counts: Vec<Vec<u32>> = (0..chips)
            .map(|c| {
                (0..blocks)
                    .map(|b| {
                        if counts.is_empty() { 0 } else { counts[(c * blocks + b) % counts.len()] }
                    })
                    .collect()
            })
            .collect();
        let ckpt = Checkpoint { seq, l2p, erase_counts };
        let blob = ckpt.encode();
        prop_assert_eq!(Checkpoint::decode(&blob).unwrap(), ckpt.clone());
        // Encoding is canonical: re-encoding the decode is byte-identical.
        prop_assert_eq!(Checkpoint::decode(&blob).unwrap().encode(), blob.clone());
        // Truncation is always detected.
        if !blob.is_empty() {
            prop_assert!(Checkpoint::decode(&blob[..blob.len() - 1]).is_err());
        }
    }

    /// §4.2.2 closure: a cluster-seeded retry chain never exceeds the
    /// cold-start chain for the same read under the same engine
    /// configuration — for arbitrary wear, retention, layer, seed
    /// offset, jitter, disturbance and optimization switches — and both
    /// chains decode at the same final offset.
    #[test]
    fn seeded_retry_chain_never_exceeds_cold_start(
        pe in 0u32..3_000,
        months_tenths in 0u32..121,
        block in 0u32..8,
        h in 0u16..48,
        seed_off in 0u8..8,
        jitter in -1i8..2,
        disturbed in prop::bool::ANY,
        optimized in prop::bool::ANY,
    ) {
        let model = CalibratedModel::default();
        let g = Geometry::paper();
        let process = ProcessModel::new(g, model.reliability, 7);
        let mut env = Environment::new(g.blocks_per_chip as usize, 3);
        env.set_aging_raw(pe, f64::from(months_tenths) / 10.0);
        let mut engine = RetryEngine::new(model);
        if optimized {
            engine.set_opt(RetryOptConfig::on());
        }
        // Jitter only occurs under retention; mirror the chip's sampling.
        let jitter = if env.effective_retention_months_of(block as usize) <= 0.0 { 0 } else { jitter };
        let wl = g.wl_addr(BlockId(block), h, 0);
        let cold = engine.read(&process, wl, &env, ReadParams::default(), true, disturbed, jitter);
        let seeded = engine.read(
            &process, wl, &env, ReadParams::seeded_from(seed_off), true, disturbed, jitter,
        );
        prop_assert!(
            seeded.retries <= cold.retries,
            "seed {} lost to the cold start: {} > {} retries",
            seed_off, seeded.retries, cold.retries
        );
        prop_assert_eq!(seeded.final_offset, cold.final_offset);
    }

    /// Cluster seeding follows the ORT key space exactly: WLs of one
    /// (block, h-layer) share that block's own entry, *other* blocks on
    /// the same h-layer get the cluster seed, other h-layers and other
    /// chips get nothing.
    #[test]
    fn cluster_seed_follows_the_ort_key_space(
        blocks in 2u32..6,
        hlayers in 2u16..12,
        wls in 2u16..6,
        h_seed in 0u16..12,
        block_seed in 0u32..6,
        v_seed in 0u16..6,
        offset in 1u8..8,
    ) {
        let g = Geometry {
            blocks_per_chip: blocks,
            hlayers_per_block: hlayers,
            wls_per_hlayer: wls,
            pages_per_wl: 3,
            page_size: 16 * 1024,
        };
        let h = h_seed % hlayers;
        let v = v_seed % wls;
        let block_a = block_seed % blocks;
        let block_b = (block_a + 1) % blocks;
        let mut opm = Opm::new(&g, 2);
        opm.set_cluster(OrtClusterConfig { enabled: true, min_samples: 1 });
        opm.update_read_offset(0, g.wl_addr(BlockId(block_a), h, 0), offset);
        // Same block + h-layer, any WL index: the block's own ORT entry.
        prop_assert_eq!(
            opm.lookup_offset(0, g.wl_addr(BlockId(block_a), h, v)),
            OffsetLookup { offset, seeded: false }
        );
        // A different block on the same h-layer: the cluster seed.
        prop_assert_eq!(
            opm.lookup_offset(0, g.wl_addr(BlockId(block_b), h, v)),
            OffsetLookup { offset, seeded: true }
        );
        // A different h-layer of the same block: cold default.
        prop_assert_eq!(
            opm.lookup_offset(0, g.wl_addr(BlockId(block_a), (h + 1) % hlayers, v)),
            OffsetLookup { offset: 0, seeded: false }
        );
        // The other chip's cluster is isolated.
        prop_assert_eq!(
            opm.lookup_offset(1, g.wl_addr(BlockId(block_b), h, v)),
            OffsetLookup { offset: 0, seeded: false }
        );
    }

    /// A bounded ORT with the cluster on is a pure function of its
    /// input sequence: replaying arbitrary interleavings of decodes and
    /// lookups reproduces every answer and every counter, and the table
    /// never exceeds its capacity.
    #[test]
    fn bounded_ort_with_cluster_replays_deterministically(
        ops in prop::collection::vec((0u32..4, 0u16..6, 0u8..8, prop::bool::ANY), 1..200),
        cap in 1usize..6,
        min_samples in 1u32..4,
    ) {
        let g = Geometry {
            blocks_per_chip: 4,
            hlayers_per_block: 6,
            wls_per_hlayer: 3,
            pages_per_wl: 3,
            page_size: 16 * 1024,
        };
        let run = || {
            let mut opm = Opm::with_ort_capacity(&g, 2, cap);
            opm.set_cluster(OrtClusterConfig { enabled: true, min_samples });
            let mut answers = Vec::new();
            for &(block, h, off, decode) in &ops {
                let chip = (block % 2) as usize;
                let wl = g.wl_addr(BlockId(block), h, 0);
                if decode {
                    opm.update_read_offset(chip, wl, off);
                } else {
                    let l = opm.lookup_offset(chip, wl);
                    answers.push((l.offset, l.seeded));
                }
                assert!(
                    opm.ort_entries(chip) <= cap,
                    "ORT grew past its capacity: {} > {cap}",
                    opm.ort_entries(chip)
                );
            }
            (
                answers,
                opm.ort_counters(),
                opm.cluster_counters(),
                opm.ort_fallbacks(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-WL OOB records survive their fixed-width spare-area encoding
    /// for arbitrary LPN tags, sequence numbers and status bits.
    #[test]
    fn wl_oob_roundtrips(
        l0 in 0u64..u64::MAX,
        l1 in 0u64..u64::MAX,
        l2 in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        torn in prop::bool::ANY,
    ) {
        let oob = WlOob {
            lpns: [l0, l1, l2],
            seq,
            status: if torn { OobStatus::Torn } else { OobStatus::Complete },
        };
        let bytes = oob.encode();
        prop_assert_eq!(bytes.len(), WlOob::ENCODED_LEN);
        prop_assert_eq!(WlOob::decode(&bytes), Some(oob));
        // A wrong-length slice never decodes.
        prop_assert_eq!(WlOob::decode(&bytes[..WlOob::ENCODED_LEN - 1]), None);
    }
}

proptest! {
    /// LPN striping is a bijection: every global LPN maps to exactly one
    /// (shard, local LPN) pair and back, locals stay within the shard's
    /// capacity, and every span split covers the original range exactly
    /// once in order.
    #[test]
    fn lpn_striping_is_a_bijection(
        shards in 1usize..9,
        stripe in 1u64..129,
        lpn in 0u64..1_000_000,
    ) {
        let router = cubeftl::StripeRouter::new(shards, stripe);
        let (s, local) = router.to_local(lpn);
        prop_assert_eq!(s, router.shard_of(lpn));
        prop_assert!(s < shards);
        prop_assert_eq!(router.to_global(s, local), lpn);
        // Capacity accounting: the local LPN fits the shard's share of
        // any global space that contains the LPN.
        let global_pages = lpn + 1;
        let mut total = 0;
        for sh in 0..shards {
            total += router.local_pages(global_pages, sh);
        }
        prop_assert_eq!(total, global_pages);
        prop_assert!(local < router.local_pages(global_pages, s));
    }

    /// Splitting a span request at stripe boundaries conserves pages:
    /// the fragments partition the original `[lpn, lpn + n)` range.
    #[test]
    fn span_splits_partition_the_request(
        shards in 1usize..9,
        stripe in 1u64..65,
        lpn in 0u64..100_000,
        n in 1u32..400,
    ) {
        let router = cubeftl::StripeRouter::new(shards, stripe);
        let req = ssdsim::HostRequest::write_span(lpn, n);
        let parts = router.split(req);
        let mut next = lpn;
        let mut pages = 0u64;
        for (s, frag) in &parts {
            prop_assert!(*s < shards);
            // Fragments are contiguous, in ascending global order.
            prop_assert_eq!(router.to_global(*s, frag.lpn), next);
            prop_assert!(frag.n_pages >= 1);
            // No fragment crosses a stripe boundary.
            prop_assert!(frag.lpn % stripe + u64::from(frag.n_pages) <= stripe);
            next += u64::from(frag.n_pages);
            pages += u64::from(frag.n_pages);
        }
        prop_assert_eq!(pages, u64::from(n));
    }
}
