//! Sharded-array determinism and correctness, end to end through the
//! harness: same master seed ⇒ byte-identical merged report at any
//! worker-thread count, on repeated runs, and across trace routing.
//!
//! `CUBEFTL_SHARDS` (CI sets 4) overrides the default shard count so
//! the same suite exercises whichever array width the job asks for.

use cubeftl::harness::{
    run_array_eval, run_array_spo_eval, run_array_trace_eval, ArrayEvalConfig, ArraySpoConfig,
    EvalConfig,
};
use cubeftl::{AgingState, FtlKind, StandardWorkload, Trace};

/// Shard count under test: `CUBEFTL_SHARDS` if set (CI runs the suite
/// once with 4), else 2 to keep the default run fast.
fn shards_under_test() -> usize {
    std::env::var("CUBEFTL_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 1_200;
    cfg
}

#[test]
fn array_double_run_is_byte_identical() {
    let cfg = cfg();
    for shards in [1, shards_under_test().max(2)] {
        let arr = ArrayEvalConfig::new(shards);
        let run = || {
            run_array_eval(
                FtlKind::Cube,
                StandardWorkload::Oltp,
                AgingState::MidLife,
                &cfg,
                &arr,
            )
        };
        assert_eq!(
            format!("{:?}", run().merged),
            format!("{:?}", run().merged),
            "{shards}-shard array diverged between identical runs"
        );
    }
}

#[test]
fn array_report_is_identical_at_any_thread_count() {
    let cfg = cfg();
    let shards = shards_under_test().max(2);
    let at = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(shards);
        arr.threads = threads;
        let r = run_array_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            &arr,
        );
        format!("{:?}", r.merged)
    };
    let one = at(1);
    assert_eq!(one, at(2), "1 vs 2 worker threads");
    assert_eq!(one, at(shards), "1 vs {shards} worker threads");
}

#[test]
fn array_completes_the_exact_budget_and_sums_shard_counters() {
    let cfg = cfg();
    let arr = ArrayEvalConfig::new(shards_under_test());
    let r = run_array_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
        &arr,
    );
    assert_eq!(r.merged.completed, cfg.requests);
    assert_eq!(r.merged.shards, arr.shards);
    assert_eq!(
        r.merged.completed,
        r.shards.iter().map(|s| s.completed).sum::<u64>()
    );
    assert_eq!(
        r.merged.per_shard_completed,
        r.shards.iter().map(|s| s.completed).collect::<Vec<_>>()
    );
    let iops_sum: f64 = r.shards.iter().map(|s| s.iops).sum();
    assert!((r.merged.iops - iops_sum).abs() < 1e-9);
    // The makespan is the slowest shard, not a sum.
    for s in &r.shards {
        assert!(s.sim_time_us <= r.merged.sim_time_us);
    }
}

#[test]
fn array_trace_routing_is_deterministic() {
    let text =
        std::fs::read_to_string("tests/data/sample_trace.csv").expect("sample trace present");
    let trace = Trace::from_msr_csv(&text, 16 * 1024, 1 << 40).expect("sample trace parses");
    let cfg = cfg();
    let arr = ArrayEvalConfig::new(shards_under_test().max(2));
    let run = || run_array_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &arr, &trace);
    let a = run();
    let b = run();
    assert_eq!(format!("{:?}", a.merged), format!("{:?}", b.merged));
    // Striping may split spans at stripe boundaries but never drops or
    // invents host work: at least one fragment per trace request.
    assert!(a.merged.completed >= trace.len() as u64);
}

/// Cut instant that lands mid-run on every shard: half the fastest
/// shard's uninterrupted makespan (each shard starts at virtual time
/// zero, so all of them are still busy then).
fn mid_run_cut_us(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
) -> f64 {
    let probe = run_array_eval(kind, workload, aging, cfg, arr);
    let min_time = probe
        .shards
        .iter()
        .map(|s| s.sim_time_us)
        .fold(f64::INFINITY, f64::min);
    assert!(min_time.is_finite() && min_time > 0.0);
    min_time * 0.5
}

#[test]
fn array_wide_spo_recovers_every_shard_with_zero_loss() {
    let mut cfg = cfg();
    cfg.requests = 2_000;
    let arr = ArrayEvalConfig::new(shards_under_test().max(2));
    let spo = ArraySpoConfig {
        cut_at_us: mid_run_cut_us(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::MidLife,
            &cfg,
            &arr,
        ),
        ckpt_interval_host_wls: 32,
    };
    let r = run_array_spo_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
        &arr,
        &spo,
    );
    assert_eq!(r.shards_cut(), arr.shards, "every shard cut at the instant");
    assert!(
        r.lost_lpns.is_empty(),
        "host-acknowledged data lost: {:?}",
        r.lost_lpns
    );
    assert!(r.recoveries.iter().all(Option::is_some));
    let resumed = r.resumed.expect("workload remainder resumed");
    // Requests in flight at the cut were issued but never acknowledged,
    // so they are neither completed nor replayed; the shortfall is
    // bounded by the per-device queue depth.
    let done = r.pre_cut.completed + resumed.completed;
    assert!(resumed.completed > 0, "the remainder must actually resume");
    assert!(done <= cfg.requests);
    assert!(
        cfg.requests - done <= 32 * arr.shards as u64,
        "shortfall {} exceeds the array's possible in-flight window",
        cfg.requests - done
    );
}

#[test]
fn array_spo_experiment_is_deterministic() {
    let mut cfg = cfg();
    cfg.requests = 1_500;
    let arr = ArrayEvalConfig::new(2);
    let spo = ArraySpoConfig {
        cut_at_us: mid_run_cut_us(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
            &arr,
        ),
        ckpt_interval_host_wls: 64,
    };
    let run = || {
        let r = run_array_spo_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
            &arr,
            &spo,
        );
        format!("{:?} {:?} {:?}", r.pre_cut, r.resumed, r.lost_lpns)
    };
    assert_eq!(run(), run());
}
