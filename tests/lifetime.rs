//! Lifetime fast-forward aging campaigns, end to end through the
//! harness: byte-identical double runs, worker-thread invariance on
//! sharded arrays, defaults-off golden identity against the plain
//! runners, and property tests on the aging semantics.
//!
//! The thread-invariance test honours `CUBEFTL_LIFETIME_THREADS` (CI
//! runs the suite at 2 and 8) as the second worker-thread count.

use cubeftl::harness::{
    run_array_eval, run_eval, run_lifetime_array_eval, run_lifetime_eval, run_lifetime_trace_eval,
    run_trace_eval, ArrayEvalConfig, EvalConfig,
};
use cubeftl::{AgingState, FtlKind, LifetimeConfig, StandardWorkload, Trace};
use nand3d::Environment;
use proptest::prelude::*;

const PAGE_BYTES: u64 = 16 * 1024;

fn cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 1_200;
    cfg
}

/// A short three-epoch campaign sized for test runtimes.
fn campaign() -> LifetimeConfig {
    let mut life = LifetimeConfig::campaign();
    life.epochs = 3;
    life
}

/// Second worker-thread count of the invariance test: CI sets
/// `CUBEFTL_LIFETIME_THREADS` to 2 and 8; default 4 (= one per shard).
fn threads_under_test() -> usize {
    std::env::var("CUBEFTL_LIFETIME_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn usr_trace() -> Trace {
    let text = std::fs::read_to_string("tests/data/traces/msr_usr_wr.csv")
        .expect("write-heavy usr trace present");
    Trace::from_msr_csv(&text, PAGE_BYTES, 1 << 40).expect("usr trace parses")
}

#[test]
fn campaign_double_run_is_byte_identical() {
    let cfg = cfg();
    let life = campaign();
    let run = || {
        run_lifetime_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            &life,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(
        format!("{:?}", a.epochs),
        format!("{:?}", b.epochs),
        "per-epoch reports diverged between identical campaigns"
    );
    assert_eq!(format!("{:?}", a.summaries), format!("{:?}", b.summaries));
    assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events));
}

#[test]
fn array_campaign_is_identical_at_any_thread_count() {
    let cfg = cfg();
    let life = campaign();
    let at = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(4);
        arr.threads = threads;
        let r = run_lifetime_array_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
            &arr,
            &life,
        );
        let per_epoch: Vec<String> = r
            .epochs
            .iter()
            .map(|e| format!("{:?} {:?}", e.merged, e.shards))
            .collect();
        format!("{per_epoch:?} {:?} {:?}", r.summaries, r.events)
    };
    let one = at(1);
    assert_eq!(one, at(threads_under_test()), "1 vs env worker threads");
    assert_eq!(one, at(2), "1 vs 2 worker threads");
}

#[test]
fn off_campaign_reproduces_run_eval_byte_for_byte() {
    let cfg = cfg();
    let life = LifetimeConfig::off();
    let plain = run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::MidLife,
        &cfg,
    );
    let r = run_lifetime_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::MidLife,
        &cfg,
        &life,
    );
    assert_eq!(r.epochs.len(), 1, "off config runs a single epoch");
    assert!(r.summaries.is_empty(), "no aging steps applied");
    assert!(r.events.is_empty(), "no barrier events emitted");
    assert_eq!(
        format!("{:?}", r.epochs[0]),
        format!("{plain:?}"),
        "disengaged campaign must reproduce run_eval exactly"
    );
}

#[test]
fn off_campaign_reproduces_run_trace_eval_byte_for_byte() {
    let cfg = cfg();
    let trace = usr_trace();
    let plain = run_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &trace);
    let r = run_lifetime_trace_eval(
        FtlKind::Cube,
        AgingState::Fresh,
        &cfg,
        &LifetimeConfig::off(),
        &trace,
    );
    assert_eq!(r.epochs.len(), 1);
    assert_eq!(format!("{:?}", r.epochs[0]), format!("{plain:?}"));
}

#[test]
fn off_campaign_reproduces_run_array_eval_byte_for_byte() {
    let cfg = cfg();
    let arr = ArrayEvalConfig::new(4);
    let plain = run_array_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
        &arr,
    );
    let r = run_lifetime_array_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
        &arr,
        &LifetimeConfig::off(),
    );
    assert_eq!(r.epochs.len(), 1);
    assert_eq!(
        format!("{:?} {:?}", r.epochs[0].merged, r.epochs[0].shards),
        format!("{:?} {:?}", plain.merged, plain.shards),
        "disengaged array campaign must reproduce run_array_eval exactly"
    );
}

#[test]
fn campaign_ages_the_device_and_emits_barrier_events() {
    let cfg = cfg();
    let life = campaign();
    let r = run_lifetime_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &life,
    );
    assert_eq!(r.epochs.len(), life.epochs as usize);
    assert_eq!(r.summaries.len(), life.steps() as usize);
    assert_eq!(r.events.len(), life.steps() as usize);
    for s in &r.summaries {
        assert!(s.blocks_aged > 0, "every step must touch blocks");
        assert!(s.pe_added > 0);
        assert!(s.retention_added_months > 0.0);
    }
    // Barrier timestamps sit on the concatenated campaign timeline.
    let mut last = 0.0;
    for e in &r.events {
        assert!(e.t_us >= last, "barrier events must not run backwards");
        last = e.t_us;
    }
    // An aged device retries at least as much as the fresh epoch.
    assert!(r.retry_rate(r.epochs.len() - 1) >= r.retry_rate(0));
}

#[test]
fn write_heavy_trace_replays_inside_every_campaign_epoch() {
    let cfg = cfg();
    let trace = usr_trace();
    let writes = trace
        .requests()
        .iter()
        .filter(|r| matches!(r.op, ssdsim::HostOp::Write))
        .count();
    assert!(
        writes * 5 >= trace.len() * 4,
        "usr trace must stay write-heavy ({writes}/{})",
        trace.len()
    );
    let life = campaign();
    let run = || run_lifetime_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &life, &trace);
    let r = run();
    assert_eq!(r.epochs.len(), life.epochs as usize);
    for rep in &r.epochs {
        assert_eq!(
            rep.completed,
            trace.len() as u64,
            "every epoch replays the whole trace"
        );
    }
    assert_eq!(
        format!("{:?}", r.epochs),
        format!("{:?}", run().epochs),
        "trace campaign must be deterministic"
    );
}

proptest! {
    /// Fast-forward aging is monotone: a block's effective P/E count
    /// and retention age never decrease across an arbitrary sequence of
    /// epoch advances.
    #[test]
    fn aging_is_monotone(
        blocks in 1usize..16,
        steps in prop::collection::vec((0u32..2_000, 0.0f64..24.0), 1..12),
    ) {
        let mut env = Environment::new(blocks, 7);
        env.enable_lifetime_aging();
        let block = blocks - 1;
        let (mut last_pe, mut last_ret) = (env.pe(block), env.retention_months_of(block));
        for (pe_add, months_add) in steps {
            env.advance_block_age(block, pe_add, months_add);
            let (pe, ret) = (env.pe(block), env.retention_months_of(block));
            prop_assert!(pe >= last_pe, "P/E went backwards: {last_pe} -> {pe}");
            prop_assert!(ret >= last_ret, "retention went backwards: {last_ret} -> {ret}");
            last_pe = pe;
            last_ret = ret;
        }
    }

    /// Scrubbing (an erase, or an explicit refresh mark) resets a
    /// block's fast-forwarded retention age to zero but never its
    /// accumulated P/E wear — reliability is bought back, wear is not.
    #[test]
    fn scrub_resets_retention_not_pe(
        blocks in 1usize..16,
        pe_add in 1u32..5_000,
        months_add in 0.1f64..36.0,
        via_erase in prop::bool::ANY,
    ) {
        let mut env = Environment::new(blocks, 11);
        env.enable_lifetime_aging();
        let block = 0;
        env.advance_block_age(block, pe_add, months_add);
        prop_assert!(env.retention_months_of(block) > 0.0);
        let wear_before = env.lifetime_pe_add(block);
        let erases_before = env.erase_count(block);
        if via_erase {
            env.record_erase(block);
            prop_assert_eq!(env.erase_count(block), erases_before + 1);
        } else {
            env.mark_refreshed(block);
            prop_assert_eq!(env.erase_count(block), erases_before);
        }
        prop_assert_eq!(
            env.retention_months_of(block), 0.0,
            "refresh must zero the fast-forwarded retention age"
        );
        prop_assert_eq!(
            env.lifetime_pe_add(block), wear_before,
            "refresh must not undo fast-forwarded P/E wear"
        );
    }
}
