//! End-to-end background-maintenance guarantees: the retention scrubber
//! must actually improve reliability under a retention-heavy fault plan,
//! and disabling maintenance must leave the simulator bit-identical to
//! the seed behaviour.

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{
    AgingState, FaultKind, FaultPlan, FtlKind, MaintConfig, SimReport, StandardWorkload,
};

/// A retention-heavy scenario: a read-mostly workload over EndOfLife
/// data (2K P/E + 1-year baked retention) with seeded uncorrectable and
/// stuck-retry injection — the regime the scrubber exists for.
fn retention_heavy_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::reduced();
    cfg.requests = 30_000;
    cfg.faults = Some(
        FaultPlan::seeded(cfg.seed)
            .with_rate(FaultKind::UncorrectableRead, 0.03)
            .with_rate(FaultKind::StuckRetry, 0.01),
    );
    cfg
}

fn run(cfg: &EvalConfig) -> SimReport {
    run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::EndOfLife,
        cfg,
    )
}

fn mean_retries(r: &SimReport) -> f64 {
    r.ftl.read_retries as f64 / r.ftl.nand_reads.max(1) as f64
}

#[test]
fn scrubber_reduces_uncorrectables_and_retries_under_retention_faults() {
    let mut cfg = retention_heavy_cfg();
    let off = run(&cfg);

    // Give maintenance generous bandwidth (small host-priority gap,
    // large migration batch): this test asserts the reliability
    // direction; the throughput price is the bench's concern.
    let mut maint = MaintConfig::default_on();
    maint.scrub_batch_pages = 96;
    cfg.maint = Some(maint);
    cfg.ssd.maint.enabled = true;
    cfg.ssd.maint.min_gap_us = 50.0;
    let on = run(&cfg);

    assert_eq!(off.completed, on.completed, "both runs must finish");
    assert!(
        on.ftl.scrub_blocks > 0,
        "the scrubber must have refreshed blocks ({} scrubs)",
        on.ftl.scrub_blocks
    );
    assert!(
        on.ftl.uncorrectable_recoveries < off.ftl.uncorrectable_recoveries,
        "scrubbing must reduce uncorrectable recoveries (off {}, on {})",
        off.ftl.uncorrectable_recoveries,
        on.ftl.uncorrectable_recoveries,
    );
    assert!(
        mean_retries(&on) < mean_retries(&off),
        "scrubbing must reduce the mean read-retry count (off {:.3}, on {:.3})",
        mean_retries(&off),
        mean_retries(&on),
    );
}

#[test]
fn disabled_maintenance_is_bit_identical_to_seed_behavior() {
    let cfg_none = retention_heavy_cfg();
    let baseline = run(&cfg_none);

    // `MaintConfig::off()` must be indistinguishable from never touching
    // the maintenance API at all.
    let mut cfg_off = retention_heavy_cfg();
    cfg_off.maint = Some(MaintConfig::off());
    let off = run(&cfg_off);

    assert_eq!(format!("{baseline:?}"), format!("{off:?}"));
    assert_eq!(baseline.ftl.maint_actions(), 0);
}
