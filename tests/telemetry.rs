//! Telemetry subsystem guarantees: schema-valid output files, golden
//! snapshots, byte-identity across double runs and thread counts, and
//! zero perturbation of the simulation itself.
//!
//! The golden files live in `tests/data/golden_*`. If an intentional
//! model change shifts them, regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test telemetry` and review the diff —
//! the point is that *unintentional* drift fails loudly.

use cubeftl::harness::{
    run_array_eval_traced, run_eval, run_eval_traced, ArrayEvalConfig, EvalConfig, TelemetryOutput,
    TelemetrySpec,
};
use cubeftl::{
    events_to_ndjson, AgingState, EventMask, FtlKind, MetricRegistry, SimReport, StandardWorkload,
};
use telemetry::{validate_ndjson, validate_trace_ndjson};

/// One traced smoke run with every category on and a tight sampling
/// interval (2 ms of virtual time).
fn traced_smoke(requests: u64) -> (SimReport, TelemetryOutput) {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = requests;
    run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &TelemetrySpec::all(2_000.0),
    )
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // A fully instrumented run must report bit-identically to the plain
    // run — the trace observes the simulation, never steers it. (This is
    // also what keeps the pre-PR golden snapshot in determinism.rs
    // valid with telemetry compiled in.)
    let cfg = EvalConfig::smoke();
    let plain = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
    );
    let (traced, out) = traced_smoke(cfg.requests);
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "telemetry perturbed the simulation"
    );
    assert!(!out.events.is_empty(), "the trace must capture events");
    assert!(!out.series.rows.is_empty(), "the sampler must produce rows");
}

#[test]
fn traced_double_run_is_byte_identical() {
    let (_, a) = traced_smoke(2_000);
    let (_, b) = traced_smoke(2_000);
    assert_eq!(
        events_to_ndjson(&a.events),
        events_to_ndjson(&b.events),
        "trace files diverged between identical runs"
    );
    assert_eq!(a.series.to_csv(), b.series.to_csv());
    assert_eq!(a.series.to_ndjson(), b.series.to_ndjson());
}

#[test]
fn emitted_files_are_schema_valid() {
    let (report, out) = traced_smoke(2_000);
    let trace = events_to_ndjson(&out.events);
    let n = validate_trace_ndjson(&trace).expect("trace NDJSON is well-formed");
    assert_eq!(n, out.events.len());

    let series = out.series.to_ndjson();
    let n = validate_ndjson(&series).expect("series NDJSON is well-formed");
    assert_eq!(n, out.series.rows.len());

    let mut reg = MetricRegistry::new();
    report.register_metrics(&mut reg, "ssd");
    let metrics = reg.to_ndjson();
    let n = validate_ndjson(&metrics).expect("metrics NDJSON is well-formed");
    assert_eq!(n, reg.entries().len());
    assert!(n > 0, "the registry must have entries");
}

#[test]
fn event_mask_filters_categories() {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 500;
    let tel = TelemetrySpec {
        events: EventMask::ISPP,
        sample_interval_us: None,
    };
    let (_, out) = run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &tel,
    );
    assert!(!out.events.is_empty(), "ISPP events must fire on writes");
    for e in &out.events {
        let line = e.to_json();
        assert!(
            line.contains("\"kind\":\"ispp_program\""),
            "mask leaked a foreign category: {line}"
        );
    }
    assert!(out.series.rows.is_empty(), "sampling was off");
}

/// Golden-file comparison with `UPDATE_GOLDEN=1` regeneration.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        golden, actual,
        "{name} drifted from the golden snapshot; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_trace_and_series_are_stable() {
    // A short run keeps the committed files small while still covering
    // host I/O, ISPP and GC event emission plus several sample rows.
    let (report, out) = traced_smoke(300);
    check_golden("golden_trace.ndjson", &events_to_ndjson(&out.events));
    check_golden("golden_series.csv", &out.series.to_csv());
    let mut reg = MetricRegistry::new();
    report.register_metrics(&mut reg, "ssd");
    check_golden("golden_metrics.ndjson", &reg.to_ndjson());
}

#[test]
fn array_telemetry_is_thread_count_invariant() {
    // 4 shards at 1 vs 4 worker threads: trace, series and merged report
    // must be byte-identical — fan-in follows shard order, never
    // completion order.
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 1_200;
    let tel = TelemetrySpec::all(1_000.0);
    let run = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(4);
        arr.threads = threads;
        run_array_eval_traced(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::MidLife,
            &cfg,
            &arr,
            &tel,
        )
    };
    let (ra, ta) = run(1);
    let (rb, tb) = run(4);
    assert_eq!(
        events_to_ndjson(&ta.events),
        events_to_ndjson(&tb.events),
        "array trace diverged across thread counts"
    );
    assert_eq!(ta.series.to_csv(), tb.series.to_csv());
    assert_eq!(
        format!("{:?}", ra.merged),
        format!("{:?}", rb.merged),
        "merged report diverged across thread counts"
    );

    // Every shard contributed, tagged with its index, in shard order.
    let shards: Vec<u32> = ta.events.iter().map(|e| e.shard).collect();
    assert!(
        shards.windows(2).all(|w| w[0] <= w[1]),
        "shard streams must be concatenated in shard order"
    );
    for s in 0..4 {
        assert!(
            shards.contains(&s),
            "shard {s} emitted no events — per-shard tagging broken"
        );
    }
}
