//! Array resilience, end to end through the harness: rotating parity,
//! whole-shard failure injection, degraded reads, deterministic
//! background rebuild — and the zero-host-acknowledged-loss audit.
//!
//! Determinism discipline matches `tests/array.rs`: the same master
//! seed must produce a byte-identical report on repeated runs and at
//! any worker-thread count; with everything off the parity router must
//! route byte-identically to the plain [`StripeRouter`].

use cubeftl::harness::{
    run_array_failure_eval, ArrayEvalConfig, ArrayFailureConfig, EvalConfig, FailSpec,
};
use cubeftl::{
    page_fingerprint, xor_parity, AgingState, FtlKind, HostRequest, PageRole, ParityRouter,
    StandardWorkload, StripeRouter,
};
use proptest::prelude::*;

fn cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 1_000;
    cfg
}

/// Worker threads driving the engine; `CUBEFTL_FAILURE_THREADS`
/// overrides (CI re-runs the suite at 2 and 8) — results must be
/// identical at any value.
fn arr(shards: usize) -> ArrayEvalConfig {
    let mut arr = ArrayEvalConfig::new(shards);
    arr.stripe_pages = 16;
    arr.threads = std::env::var("CUBEFTL_FAILURE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    arr
}

/// A failure scenario reliably mid-run at smoke scale.
fn fail_cfg() -> ArrayFailureConfig {
    let mut fc = ArrayFailureConfig::off();
    fc.parity = true;
    fc.fail = Some(FailSpec {
        shard: 1,
        at_us: 3_000.0,
    });
    fc.spare_shards = 1;
    fc
}

#[test]
fn parity_off_routes_identically_to_plain_striping() {
    // The defaults-off router IS the pre-parity router: every request
    // stream fans out to byte-identical per-shard vectors.
    let plain = StripeRouter::new(3, 16);
    let off = ParityRouter::new(3, 16, false);
    let stream: Vec<HostRequest> = (0..500u64)
        .map(|i| {
            let lpn = (i * 37) % 700;
            match i % 3 {
                0 => HostRequest::read(lpn),
                1 => HostRequest::write_span(lpn, 1 + (i % 5) as u32),
                _ => HostRequest::trim_span(lpn, 1 + (i % 3) as u32),
            }
        })
        .collect();
    assert_eq!(
        plain.route_stream(stream.clone()),
        off.route_stream(stream),
        "parity-off routing must reproduce plain striping byte-for-byte"
    );
}

#[test]
fn healthy_run_is_deterministic_and_loss_free() {
    let cfg = cfg();
    let arr = arr(3);
    let mut fc = ArrayFailureConfig::off();
    fc.parity = true;
    let run = || {
        run_array_failure_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::MidLife,
            &cfg,
            &arr,
            &fc,
        )
    };
    let a = run();
    let b = run();
    assert!(a.audit.zero_loss);
    assert!(a.degraded.is_none());
    assert_eq!(a.resilience.failed_shard, None);
    assert!(a.healthy.completed > 0);
    assert_eq!(
        format!("{:?}", (&a.healthy, &a.audit)),
        format!("{:?}", (&b.healthy, &b.audit)),
        "healthy parity-on run diverged between identical runs"
    );
}

#[test]
fn failure_degraded_rebuild_reaches_zero_loss() {
    let cfg = cfg();
    let arr = arr(3);
    let fc = fail_cfg();
    let r = run_array_failure_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
        &arr,
        &fc,
    );
    assert_eq!(r.resilience.failed_shard, Some(1));
    assert_eq!(r.resilience.spare_shard, Some(3));
    assert!(
        r.audit.durable_data_pages > 0,
        "the dead shard must have held durable data"
    );
    assert!(r.audit.acked_pages > 0, "some pages were array-acked");
    assert_eq!(r.audit.lost_pages, 0, "parity must eliminate loss");
    assert!(r.audit.zero_loss);
    // The rebuild actually moved the acked pages onto the spare.
    assert_eq!(r.audit.rebuilt_mapped_pages, r.audit.acked_pages);
    assert!(r.resilience.rebuild_pages >= r.audit.acked_pages);
    assert!(r.resilience.rebuild_time_us > 0.0, "rebuild drained");
    assert!(r.rebuild.curve.windows(2).all(|w| w[0].1 <= w[1].1));
    // Degraded reads served during the rebuild, fanned out to both
    // survivors.
    assert!(r.resilience.degraded_reads > 0, "degraded reads served");
    assert_eq!(
        r.resilience.degraded_fragment_reads,
        r.resilience.degraded_reads * 2
    );
    assert_eq!(r.resilience.per_shard_degraded_reads[1], 0);
    // The barrier emitted the degraded/rebuild trace events.
    assert!(r.events.iter().any(|e| e
        .to_json()
        .contains("\"shard_fail\",\"failed\":1,\"phase\":\"inject\"")));
    assert!(r
        .events
        .iter()
        .any(|e| e.to_json().contains("\"rebuild_unit\"")));
    assert!(r
        .events
        .iter()
        .any(|e| e.to_json().contains("\"degraded_read\"")));
}

#[test]
fn parity_off_failure_loses_the_dead_shard() {
    let cfg = cfg();
    let arr = arr(3);
    let mut fc = fail_cfg();
    fc.parity = false; // no redundancy: the dead shard's data is gone
    let r = run_array_failure_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
        &arr,
        &fc,
    );
    assert!(r.audit.durable_data_pages > 0);
    assert_eq!(r.audit.lost_pages, r.audit.durable_data_pages);
    assert!(!r.audit.zero_loss, "parity off must show the loss");
    assert_eq!(r.resilience.degraded_reads, 0);
    assert_eq!(r.resilience.rebuild_pages, 0);
}

#[test]
fn failure_report_is_identical_at_any_thread_count_and_on_reruns() {
    let cfg = cfg();
    let shards = 3;
    let fc = fail_cfg();
    let at = |threads: usize| {
        let mut a = arr(shards);
        a.threads = threads;
        let r = run_array_failure_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::MidLife,
            &cfg,
            &a,
            &fc,
        );
        format!(
            "{:?}",
            (
                &r.healthy,
                &r.degraded,
                &r.resumed,
                &r.resilience,
                &r.rebuild,
                &r.audit,
                &r.events
            )
        )
    };
    let one = at(1);
    assert_eq!(one, at(2), "1 vs 2 worker threads");
    assert_eq!(one, at(shards + 1), "1 vs N+1 worker threads");
    assert_eq!(one, at(1), "double run");
}

#[test]
fn failure_composes_with_an_array_spo_cut() {
    let cfg = cfg();
    let arr = arr(3);
    let mut fc = fail_cfg();
    fc.spo_cut_at_us = Some(2_000.0); // cut mid-degraded-phase
    let r = run_array_failure_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
        &arr,
        &fc,
    );
    assert!(
        r.recoveries.iter().any(Option::is_some),
        "the composed SPO cut must land on at least one shard"
    );
    assert!(
        r.spo_lost_lpns.is_empty(),
        "crash recovery lost acknowledged data: {:?}",
        r.spo_lost_lpns
    );
    assert!(r.audit.zero_loss, "failure + SPO still reaches zero loss");
    assert_eq!(r.audit.rebuilt_mapped_pages, r.audit.acked_pages);
    // Determinism holds for the composed scenario too.
    let rerun = run_array_failure_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
        &arr,
        &fc,
    );
    assert_eq!(
        format!("{:?}", (&r.resilience, &r.audit, &r.rebuild)),
        format!("{:?}", (&rerun.resilience, &rerun.audit, &rerun.rebuild)),
    );
}

proptest! {
    /// XOR reconstruction is exact for arbitrary stripe contents: drop
    /// any one data fingerprint and parity restores it.
    #[test]
    fn xor_reconstruction_is_exact(
        lpns in prop::collection::vec(0u64..1_000_000, 2..12),
        versions in prop::collection::vec(0u64..1_000, 2..12),
        drop_idx in 0usize..12,
    ) {
        let n = lpns.len().min(versions.len());
        let fps: Vec<u64> = (0..n)
            .map(|i| page_fingerprint(lpns[i], versions[i]))
            .collect();
        let parity = xor_parity(fps.iter().copied());
        let drop_idx = drop_idx % n;
        let survivors = fps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx)
            .map(|(_, f)| *f);
        prop_assert_eq!(xor_parity(survivors) ^ parity, fps[drop_idx]);
    }

    /// The rotating parity placement is a bijection: every global data
    /// LPN maps to exactly one non-parity local page and back, and
    /// every local page has exactly one role.
    #[test]
    fn rotating_parity_placement_is_a_bijection(
        shards in 2usize..7,
        stripe in 1u64..17,
        rows in 1u64..9,
    ) {
        let r = ParityRouter::new(shards, stripe, true);
        let global = stripe * (shards as u64 - 1) * rows;
        let local = r.local_pages(global);
        prop_assert_eq!(local, rows * stripe);
        let mut seen = vec![false; global as usize];
        let mut parity_pages = 0u64;
        for s in 0..shards {
            for l in 0..local {
                match r.page_at(s, l) {
                    PageRole::Data(g) => {
                        prop_assert!(g < global, "data LPN {} out of range", g);
                        prop_assert!(!seen[g as usize], "duplicate owner for {}", g);
                        seen[g as usize] = true;
                        // Roundtrip through the forward map.
                        prop_assert_eq!(r.to_local(g), (s, l));
                    }
                    PageRole::Parity { row } => {
                        prop_assert_eq!(row, l / stripe);
                        prop_assert_eq!(s, r.parity_shard(row));
                        parity_pages += 1;
                    }
                }
            }
        }
        prop_assert!(seen.into_iter().all(|b| b), "every global LPN covered");
        prop_assert_eq!(parity_pages, rows * stripe);
    }
}
