//! End-to-end fault injection: seeded fault plans flow from the harness
//! through the FTL into the NAND model, every injected anomaly is
//! recovered, and the recovery work is visible in the [`SimReport`].

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FaultKind, FaultPlan, FtlKind, StandardWorkload};

/// All five fault classes, hot enough to fire repeatedly in a smoke run.
fn hot_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_rate(FaultKind::IsppLoopOutlier, 0.02)
        .with_rate(FaultKind::BerSpike, 0.02)
        .with_rate(FaultKind::ProgramAbort, 0.01)
        .with_rate(FaultKind::StuckRetry, 0.05)
        .with_rate(FaultKind::UncorrectableRead, 0.02)
}

fn faulty_cfg(seed: u64) -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.faults = Some(hot_plan(seed));
    cfg
}

#[test]
fn every_ftl_completes_under_heavy_faults() {
    // Faults cost latency but never data: every request completes and
    // every read returns the mapped page (the FTL debug-asserts that the
    // page content matches the LPN on every NAND read).
    let cfg = faulty_cfg(0xFA17);
    for kind in FtlKind::ALL {
        for workload in [StandardWorkload::Mail, StandardWorkload::Oltp] {
            let r = run_eval(kind, workload, AgingState::MidLife, &cfg);
            assert_eq!(
                r.completed,
                cfg.requests,
                "{} under {} lost requests with faults on",
                kind.name(),
                workload.label()
            );
        }
    }
}

#[test]
fn recovery_counters_surface_in_the_report() {
    let cfg = faulty_cfg(0xFA17);
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
    );
    let s = &r.ftl;
    assert!(s.program_aborts > 0, "no aborts fired");
    assert!(s.safety_reprograms > 0, "no §4.1.4 re-programs fired");
    assert!(s.safety_demotions > 0, "re-programs must demote the layer");
    assert!(s.stuck_retry_recoveries > 0, "no stuck-retry recoveries");
    assert!(
        s.uncorrectable_recoveries > 0,
        "no uncorrectable recoveries"
    );
    assert_eq!(
        s.recovery_actions(),
        s.safety_reprograms
            + s.safety_demotions
            + s.program_aborts
            + s.stuck_retry_recoveries
            + s.uncorrectable_recoveries
    );
    // Abort re-issues and safety re-programs are extra NAND programs and
    // must show up as write amplification.
    let wa = r.write_amplification().expect("the run wrote data");
    assert!(wa > 1.0, "recovery programs must amplify writes, wa={wa}");
}

#[test]
fn faults_cost_latency_but_not_results() {
    let clean = EvalConfig::smoke();
    let faulty = faulty_cfg(0xFA17);
    let kind = FtlKind::Cube;
    let a = run_eval(kind, StandardWorkload::Web, AgingState::MidLife, &clean);
    let b = run_eval(kind, StandardWorkload::Web, AgingState::MidLife, &faulty);
    // Same workload stream either way.
    assert_eq!(a.completed, b.completed);
    assert_eq!((a.reads, a.writes), (b.reads, b.writes));
    // Stuck-retry and uncorrectable recoveries pay extra read retries.
    assert!(
        b.ftl.read_retries > a.ftl.read_retries,
        "faulted reads must retry more: {} vs {}",
        b.ftl.read_retries,
        a.ftl.read_retries
    );
}

#[test]
fn safety_check_absorbs_ber_spikes_for_ps_aware_kinds() {
    // A BerSpike-only plan: the PS-aware kinds must detect the spikes on
    // monitored h-layers via §4.1.4 and re-program; the PS-unaware
    // baseline has no safety check and silently (safely) carries the
    // elevated BER — it must report zero recovery actions.
    let mut cfg = EvalConfig::smoke();
    cfg.faults = Some(FaultPlan::seeded(3).with_rate(FaultKind::BerSpike, 0.05));
    let cube = run_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
    );
    let page = run_eval(
        FtlKind::Page,
        StandardWorkload::Oltp,
        AgingState::MidLife,
        &cfg,
    );
    assert!(
        cube.ftl.safety_reprograms > 0,
        "cubeFTL must catch injected BER spikes"
    );
    assert_eq!(page.ftl.safety_reprograms, 0, "pageFTL has no safety check");
    assert_eq!(page.ftl.recovery_actions(), 0);
}

#[test]
fn plan_seed_uncorrelates_chips() {
    // Two plans with the same rates and different seeds must not inject
    // the same fault pattern (per-chip streams are derived from the plan
    // seed, not from the chip's process seed).
    let a = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &faulty_cfg(1),
    );
    let b = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &faulty_cfg(2),
    );
    assert_ne!(
        format!("{:?}", a.ftl),
        format!("{:?}", b.ftl),
        "fault streams must depend on the plan seed"
    );
}
