//! Trace-file replay through the harness: the MSR-Cambridge-style
//! sample trace in `tests/data/` parses, folds into the simulated
//! address space, and replays deterministically on single devices and
//! sharded arrays alike.

use cubeftl::harness::{run_trace_eval, EvalConfig};
use cubeftl::{AgingState, FtlKind, Trace};

const PAGE_BYTES: u64 = 16 * 1024;

fn sample() -> Trace {
    let text =
        std::fs::read_to_string("tests/data/sample_trace.csv").expect("sample trace present");
    Trace::from_msr_csv(&text, PAGE_BYTES, 1 << 40).expect("sample trace parses")
}

#[test]
fn sample_trace_parses_with_mixed_ops_and_spans() {
    let trace = sample();
    assert_eq!(trace.len(), 40, "one request per data row, header skipped");
    let reads = trace
        .requests()
        .iter()
        .filter(|r| matches!(r.op, ssdsim::HostOp::Read))
        .count();
    assert!(reads > 10 && reads < 30, "mixed read/write trace");
    // Sizes above one page become multi-page spans.
    assert!(trace.requests().iter().any(|r| r.n_pages > 1));
    assert!(trace.requests().iter().all(|r| r.n_pages >= 1));
}

#[test]
fn trace_replay_completes_every_request_deterministically() {
    let cfg = EvalConfig::smoke();
    let run = || run_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &sample());
    let a = run();
    assert_eq!(a.completed, 40);
    assert!(a.reads > 0 && a.writes > 0);
    assert_eq!(format!("{a:?}"), format!("{:?}", run()));
}

#[test]
fn trace_lpns_fold_into_the_device_address_space() {
    let cfg = EvalConfig::smoke();
    // The raw trace addresses terabyte offsets; the smoke device is a
    // few thousand pages. Replay must fold, not reject or overflow.
    let r = run_trace_eval(FtlKind::Page, AgingState::Fresh, &cfg, &sample());
    assert_eq!(r.completed, 40);
}

#[test]
fn native_trace_format_still_round_trips() {
    let trace = sample();
    let back: Trace = trace.to_text().parse().expect("native format round-trips");
    assert_eq!(back.len(), trace.len());
    assert_eq!(back.requests(), trace.requests());
}
