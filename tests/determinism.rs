//! Determinism guarantees: the simulator is a pure function of its
//! configuration. Same seed + same plan ⇒ byte-identical reports, with
//! and without fault injection.
//!
//! The golden-value test pins one full configuration to exact counter
//! values. If an intentional model change shifts them, update the
//! constants — the point is that *unintentional* drift (a stray RNG
//! draw, an iteration-order dependence, a platform difference) fails
//! loudly.

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FaultKind, FaultPlan, FtlKind, StandardWorkload};

/// A smoke-scale config with every fault class enabled at a rate high
/// enough to fire many times in 2k requests.
fn faulty_cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.faults = Some(
        FaultPlan::seeded(0xDEC0DE)
            .with_rate(FaultKind::IsppLoopOutlier, 0.01)
            .with_rate(FaultKind::BerSpike, 0.01)
            .with_rate(FaultKind::ProgramAbort, 0.005)
            .with_rate(FaultKind::StuckRetry, 0.02)
            .with_rate(FaultKind::UncorrectableRead, 0.01),
    );
    cfg
}

#[test]
fn double_run_is_byte_identical_without_faults() {
    let cfg = EvalConfig::smoke();
    for kind in [FtlKind::Page, FtlKind::Cube] {
        let a = run_eval(kind, StandardWorkload::Oltp, AgingState::MidLife, &cfg);
        let b = run_eval(kind, StandardWorkload::Oltp, AgingState::MidLife, &cfg);
        // Debug formatting covers every field, including every latency
        // sample, bit-exactly.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{} diverged between identical runs",
            kind.name()
        );
    }
}

#[test]
fn double_run_is_byte_identical_with_faults() {
    let cfg = faulty_cfg();
    let a = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
    );
    let b = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
    );
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(
        a.ftl.recovery_actions() > 0,
        "the faulty config must actually exercise recovery paths"
    );
}

#[test]
fn fault_seed_changes_the_fault_stream_but_not_correctness() {
    let cfg_a = faulty_cfg();
    let mut cfg_b = faulty_cfg();
    if let Some(plan) = &mut cfg_b.faults {
        plan.seed = 0x5EED;
    }
    let a = run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::MidLife,
        &cfg_a,
    );
    let b = run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::MidLife,
        &cfg_b,
    );
    assert_ne!(
        format!("{:?}", a.ftl),
        format!("{:?}", b.ftl),
        "different fault seeds should draw different fault streams"
    );
    // Both runs stay correct regardless of the stream.
    assert_eq!(a.completed, cfg_a.requests);
    assert_eq!(b.completed, cfg_b.requests);
}

#[test]
fn golden_smoke_report_is_stable() {
    let cfg = EvalConfig::smoke();
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
    );
    // Integer-exact golden values for the default smoke configuration
    // (seed 42). These pin the whole pipeline: workload generation,
    // buffering, WL allocation, GC and NAND timing.
    assert_eq!(r.completed, 2_000);
    assert_eq!(
        (r.reads, r.writes, r.trims),
        (GOLDEN_READS, GOLDEN_WRITES, GOLDEN_TRIMS)
    );
    assert_eq!(r.ftl.host_wl_programs, GOLDEN_HOST_WLS);
    assert_eq!(r.ftl.gc_page_moves, GOLDEN_GC_MOVES);
    assert_eq!(r.ftl.read_retries, GOLDEN_RETRIES);
    assert_eq!(r.ftl.safety_reprograms, GOLDEN_SAFETY);
}

const GOLDEN_READS: u64 = 999;
const GOLDEN_WRITES: u64 = 939;
const GOLDEN_TRIMS: u64 = 62;
const GOLDEN_HOST_WLS: u64 = 312;
const GOLDEN_GC_MOVES: u64 = 0;
const GOLDEN_RETRIES: u64 = 0;
const GOLDEN_SAFETY: u64 = 0;

#[test]
fn golden_faulty_report_is_stable() {
    let cfg = faulty_cfg();
    let r = run_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
    );
    assert_eq!(
        (
            r.ftl.program_aborts,
            r.ftl.safety_reprograms,
            r.ftl.stuck_retry_recoveries,
            r.ftl.uncorrectable_recoveries,
        ),
        GOLDEN_FAULTY
    );
}

const GOLDEN_FAULTY: (u64, u64, u64, u64) = (2, 2, 10, 8);

#[test]
fn double_run_is_byte_identical_with_maintenance() {
    // EndOfLife over the faulty config so all three maintenance services
    // have work (12-month retention crosses every default budget), at a
    // request count long enough for background ops to actually dispatch.
    let mut cfg = faulty_cfg();
    cfg.requests = 6_000;
    cfg.maint = Some(cubeftl::MaintConfig::default_on());
    let a = run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::EndOfLife,
        &cfg,
    );
    let b = run_eval(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::EndOfLife,
        &cfg,
    );
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "maintenance-enabled runs diverged"
    );
    assert!(
        a.ftl.maint_actions() > 0,
        "the config must actually exercise background maintenance"
    );
    assert!(
        a.chip_stats.iter().any(|c| c.maint_ops > 0),
        "background ops must be dispatched through the scheduler"
    );
}

#[test]
fn spo_at_fixed_op_double_run_is_byte_identical() {
    // Same seed + same SPO point ⇒ the cut snapshot, the recovery
    // report, the recovered mapping and the resumed run must all be
    // byte-identical — crash recovery may not introduce a single
    // nondeterministic draw or iteration-order dependence.
    use cubeftl::harness::{run_spo_eval, SpoConfig};
    let cfg = EvalConfig::smoke();
    let spo = SpoConfig::at_ops(1_100);
    let run = || {
        run_spo_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::MidLife,
            &cfg,
            &spo,
        )
    };
    let (a, b) = (run(), run());
    assert!(a.fired(), "the armed trigger must fire");
    assert_eq!(a.spo, b.spo, "cut snapshots diverged");
    assert_eq!(
        format!("{:?}", a.recovery),
        format!("{:?}", b.recovery),
        "recovery reports diverged"
    );
    assert_eq!(
        format!("{:?}", a.resumed),
        format!("{:?}", b.resumed),
        "post-recovery resumed runs diverged"
    );
    assert_eq!(a.lost_lpns, b.lost_lpns);
    assert!(a.lost_lpns.is_empty(), "no host-acknowledged loss");
}
