//! End-to-end guarantees of the multi-queue QoS front-end
//! (`crates/hostq`): the off-switch reproduces the legacy closed-loop
//! path byte-for-byte, engaged runs are byte-identical across repeats
//! and worker-thread counts, overload differentiates service by class,
//! recorded traces replay as tenant streams, and the DWRR core holds
//! its scheduling invariants under property testing.
//!
//! The thread-invariance test honours `CUBEFTL_QOS_THREADS` (the second
//! worker-thread count to compare against single-threaded; default 4)
//! so CI can pin different counts.

use cubeftl::harness::{
    run_array_eval_traced, run_array_qos_eval, run_eval_traced, run_qos_eval, ArrayEvalConfig,
    EvalConfig, QosSpec, TelemetrySpec,
};
use cubeftl::{
    events_to_ndjson, AgingState, DwrrScheduler, FtlKind, StandardWorkload, TenantMix, Trace,
};
use proptest::prelude::*;
use std::collections::VecDeque;

const KIND: FtlKind = FtlKind::Cube;
const WORKLOAD: StandardWorkload = StandardWorkload::Mail;

fn smoke(requests: u64) -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = requests;
    cfg
}

/// An engaged spec: 8 queues, 32 tenants, a 4-step weight cycle.
fn engaged_spec() -> QosSpec {
    QosSpec {
        queues: 8,
        tenants: 32,
        weights: vec![8, 4, 2, 1],
        ..QosSpec::off()
    }
}

#[test]
fn disengaged_spec_is_byte_identical_to_the_legacy_path() {
    // `--queues 1 --tenants 1` must not merely approximate the old
    // behaviour — it must route through the identical code path, so
    // every pre-existing golden reproduces byte-for-byte.
    let cfg = smoke(2_000);
    let tel = TelemetrySpec::all(2_000.0);
    let (legacy, legacy_tel) = run_eval_traced(KIND, WORKLOAD, AgingState::Fresh, &cfg, &tel);
    let (qos, qos_tel) = run_qos_eval(
        KIND,
        WORKLOAD,
        AgingState::Fresh,
        &cfg,
        &QosSpec::off(),
        &tel,
    );
    assert_eq!(format!("{legacy:?}"), format!("{:?}", qos.sim));
    assert_eq!(
        events_to_ndjson(&legacy_tel.events),
        events_to_ndjson(&qos_tel.events)
    );
    assert_eq!(legacy_tel.series.to_csv(), qos_tel.series.to_csv());
    assert!(qos.qos.tenants.is_empty(), "disengaged run has no tenants");
}

#[test]
fn disengaged_array_spec_is_byte_identical_to_the_legacy_path() {
    let cfg = smoke(1_200);
    let arr = ArrayEvalConfig::new(4);
    let tel = TelemetrySpec::all(1_000.0);
    let (legacy, legacy_tel) =
        run_array_eval_traced(KIND, WORKLOAD, AgingState::Fresh, &cfg, &arr, &tel);
    let (qos, qos_tel) = run_array_qos_eval(
        KIND,
        WORKLOAD,
        AgingState::Fresh,
        &cfg,
        &arr,
        &QosSpec::off(),
        &tel,
    );
    assert_eq!(format!("{:?}", legacy.merged), format!("{:?}", qos.merged));
    assert_eq!(
        events_to_ndjson(&legacy_tel.events),
        events_to_ndjson(&qos_tel.events)
    );
    assert!(qos.qos.tenants.is_empty());
}

#[test]
fn engaged_double_run_is_byte_identical() {
    let cfg = smoke(2_500);
    let mut spec = engaged_spec();
    spec.slo_read_us = Some(5_000.0);
    let tel = TelemetrySpec::all(2_000.0);
    let run = || run_qos_eval(KIND, WORKLOAD, AgingState::Fresh, &cfg, &spec, &tel);
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert_eq!(format!("{:?}", ra.sim), format!("{:?}", rb.sim));
    assert_eq!(format!("{:?}", ra.qos), format!("{:?}", rb.qos));
    assert_eq!(events_to_ndjson(&ta.events), events_to_ndjson(&tb.events));
    assert_eq!(ta.series.to_csv(), tb.series.to_csv());
    assert!(ra.qos.total().completed > 0, "the run must serve requests");
}

#[test]
fn sharded_qos_run_is_worker_thread_invariant() {
    // 4 shards × 8 queues × 32 tenants at 1 worker thread vs N
    // (CUBEFTL_QOS_THREADS, default 4): device reports, per-tenant
    // outcomes, traces and series must all be byte-identical — shard
    // fan-in follows shard order, never completion order.
    let threads_b: usize = std::env::var("CUBEFTL_QOS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cfg = smoke(2_400);
    let spec = engaged_spec();
    let tel = TelemetrySpec::all(2_000.0);
    let run = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(4);
        arr.threads = threads;
        run_array_qos_eval(KIND, WORKLOAD, AgingState::MidLife, &cfg, &arr, &spec, &tel)
    };
    let (ra, ta) = run(1);
    let (rb, tb) = run(threads_b);
    assert_eq!(format!("{:?}", ra.merged), format!("{:?}", rb.merged));
    assert_eq!(format!("{:?}", ra.qos), format!("{:?}", rb.qos));
    assert_eq!(events_to_ndjson(&ta.events), events_to_ndjson(&tb.events));
    assert_eq!(ta.series.to_csv(), tb.series.to_csv());
    // Every tenant appears exactly once after the shard merge.
    let ids: Vec<u32> = ra.qos.tenants.iter().map(|t| t.id).collect();
    assert_eq!(ids, (0..32).collect::<Vec<u32>>());
}

#[test]
fn overload_differentiates_service_by_class() {
    // Uniform single-page streams under heavy overload: the submission
    // queues saturate, so completions track DWRR service shares and the
    // protected class sees a lower queueing tail than best-effort.
    let cfg = smoke(6_000);
    let spec = QosSpec {
        queues: 4,
        tenants: 8,
        weights: vec![8, 4, 2, 1],
        mix: Some(TenantMix::Uniform),
        ..QosSpec::off()
    };
    let (r, _) = run_qos_eval(
        KIND,
        WORKLOAD,
        AgingState::Fresh,
        &cfg,
        &spec,
        &TelemetrySpec::off(),
    );
    let total = r.qos.total();
    assert!(total.shed > 0, "the run must actually overload");
    let by_class: std::collections::HashMap<_, _> = r.qos.by_class().into_iter().collect();
    let protected = &by_class[&cubeftl::TenantClass::Protected];
    let best_effort = &by_class[&cubeftl::TenantClass::BestEffort];
    // Per-tenant service: protected tenants carry 8× the weight of
    // best-effort ones (both classes have the same tenant count here).
    assert_eq!(protected.tenants, best_effort.tenants);
    assert!(
        protected.completed > 4 * best_effort.completed,
        "protected service ({}) must dominate best-effort ({})",
        protected.completed,
        best_effort.completed
    );
    assert!(
        protected.read_latency.percentile(99.0) < best_effort.read_latency.percentile(99.0),
        "the protected read tail must beat best-effort"
    );
}

#[test]
fn recorded_traces_replay_as_tenant_zero() {
    // Each committed MSR-style CSV parses and replays as tenant 0's
    // stream; the remaining tenants stay synthetic. Double runs are
    // byte-identical.
    let dir = format!("{}/tests/data/traces", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("trace corpus directory")
        .map(|e| e.expect("dir entry").path())
        .collect();
    paths.sort();
    assert!(paths.len() >= 2, "the trace corpus must have several files");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read trace CSV");
        let trace = Trace::from_msr_csv(&text, 16 * 1024, 1 << 40)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(trace.len() >= 16, "{}: trace too short", path.display());
        let cfg = smoke(600);
        let spec = QosSpec {
            tenants: 4,
            weights: vec![4, 1],
            trace: Some(trace.clone()),
            ..QosSpec::off()
        };
        let tel = TelemetrySpec::off();
        let run = || run_qos_eval(KIND, WORKLOAD, AgingState::Fresh, &cfg, &spec, &tel);
        let (ra, _) = run();
        let (rb, _) = run();
        assert_eq!(format!("{:?}", ra.qos), format!("{:?}", rb.qos));
        // Tenant 0 completed something and never more than the trace
        // (plus nothing synthetic leaked into it).
        let t0 = &ra.qos.tenants[0];
        assert!(t0.completed > 0, "{}: tenant 0 idle", path.display());
        assert!(
            t0.admitted + t0.shed <= trace.len() as u64,
            "{}: tenant 0 over-ran its trace",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------
// DWRR scheduler properties
// ---------------------------------------------------------------------

/// Drives a scheduler over synthetic backlogs, returning per-tenant
/// serve counts. Backlogs refill to stay saturated when `saturate`.
fn drive(
    sched: &mut DwrrScheduler,
    backlog: &mut [VecDeque<u32>],
    picks: usize,
    saturate: bool,
) -> Vec<u64> {
    let mut served = vec![0u64; backlog.len()];
    for _ in 0..picks {
        let Some(t) = sched.pick(&mut |t| {
            backlog[t as usize]
                .front()
                .map(|&pages| DwrrScheduler::cost(pages))
        }) else {
            break;
        };
        let pages = backlog[t as usize].pop_front().expect("picked a backlog");
        if saturate {
            backlog[t as usize].push_back(pages);
        }
        served[t as usize] += 1;
    }
    served
}

proptest! {
    /// Work conservation: while any backlog is non-empty, `pick` never
    /// returns `None`, and it drains every queue to exhaustion.
    #[test]
    fn dwrr_is_work_conserving(
        weights in prop::collection::vec(1u32..17, 1..8),
        lens in prop::collection::vec(0usize..12, 1..8),
        pages in 1u32..16,
    ) {
        let n = weights.len().min(lens.len());
        let weights = &weights[..n];
        let mut backlog: Vec<VecDeque<u32>> = lens[..n]
            .iter()
            .map(|&l| std::iter::repeat_n(pages, l).collect())
            .collect();
        let total: usize = backlog.iter().map(|q| q.len()).sum();
        let order: Vec<u32> = (0..n as u32).collect();
        let mut s = DwrrScheduler::new(weights, order);
        let served = drive(&mut s, &mut backlog, total + 8, false);
        prop_assert_eq!(served.iter().sum::<u64>() as usize, total,
            "every queued request must be served");
        prop_assert!(backlog.iter().all(|q| q.is_empty()));
        prop_assert_eq!(s.pick(&mut |_| None), None);
    }

    /// Weight proportionality: with every tenant saturated at uniform
    /// cost, long-run service shares match weight shares within ±5%.
    #[test]
    fn dwrr_service_is_weight_proportional(
        weights in prop::collection::vec(1u32..17, 2..8),
        pages in 1u32..8,
    ) {
        let n = weights.len();
        let mut backlog: Vec<VecDeque<u32>> =
            (0..n).map(|_| VecDeque::from(vec![pages])).collect();
        let order: Vec<u32> = (0..n as u32).collect();
        let mut s = DwrrScheduler::new(&weights, order);
        let w_total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        // Long horizon: every tenant expects >= 64 serves, so ±1 serve
        // of round-boundary quantization stays well inside ±5%.
        let picks = (w_total as usize) * 64;
        let served = drive(&mut s, &mut backlog, picks, true);
        let total: u64 = served.iter().sum();
        prop_assert!(total > 0);
        for (i, &got) in served.iter().enumerate() {
            let expect = total as f64 * f64::from(weights[i]) / w_total as f64;
            let err = (got as f64 - expect).abs() / expect;
            prop_assert!(err <= 0.05,
                "tenant {i} (weight {}): served {got}, expected {expect:.1} (err {err:.3})",
                weights[i]);
        }
    }

    /// Replay bijectivity: the same pick sequence over the same
    /// backlogs leaves an identical state fingerprint and identical
    /// serve order — scheduler state is a pure function of its inputs.
    #[test]
    fn dwrr_replay_reaches_an_identical_fingerprint(
        weights in prop::collection::vec(1u32..17, 1..8),
        lens in prop::collection::vec(1usize..24, 1..8),
        pages in 1u32..16,
    ) {
        let n = weights.len().min(lens.len());
        let weights = &weights[..n];
        let run = || {
            let mut backlog: Vec<VecDeque<u32>> = lens[..n]
                .iter()
                .map(|&l| std::iter::repeat_n(pages, l).collect())
            .collect();
            let order: Vec<u32> = (0..n as u32).collect();
            let mut s = DwrrScheduler::new(weights, order);
            let mut picks = Vec::new();
            while let Some(t) = s.pick(&mut |t| {
                backlog[t as usize]
                    .front()
                    .map(|&p| DwrrScheduler::cost(p))
            }) {
                backlog[t as usize].pop_front();
                picks.push(t);
            }
            (picks, s.fingerprint())
        };
        let (picks_a, fp_a) = run();
        let (picks_b, fp_b) = run();
        prop_assert_eq!(picks_a, picks_b);
        prop_assert_eq!(fp_a, fp_b);
    }
}
