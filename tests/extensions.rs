//! Integration tests for the extension features: trace record/replay,
//! latency prediction, PS-aware ECC, and the configurable WAM.

use cubeftl::harness::{run_eval_custom, EvalConfig};
use cubeftl::{AgingState, FtlKind, StandardWorkload};
use ftl::{Ftl, FtlConfig, LatencyPredictor, Opm};
use nand3d::{BlockId, EccModel, NandChip, NandConfig, ProgramParams, WlData};
use ssdsim::{FtlDriver, HostContext, SsdSim};
use workloads::Trace;

#[test]
fn trace_replay_reproduces_simulation_bit_for_bit() {
    // Record a trace, run it twice through fresh stacks: identical
    // reports; and the serialized form round-trips.
    let cfg = FtlConfig::small();
    let mut gen = StandardWorkload::Mongo.build(800, 3);
    let trace = Trace::record(gen.as_mut(), 1_500);
    let text = trace.to_text();
    let parsed: Trace = text.parse().expect("parse");

    let run = |t: &Trace| {
        let mut ftl = Ftl::cube(cfg);
        let mut sim = SsdSim::new(ssdsim::SsdConfig::small());
        sim.prefill(&mut ftl, 0..800);
        ftl.reset_stats();
        let r = sim.run(&mut ftl, t.replay(), t.len() as u64);
        (r.iops, r.sim_time_us, r.completed, r.ftl)
    };
    assert_eq!(run(&trace), run(&parsed));
}

#[test]
fn predictor_enables_deadline_scheduling_decisions() {
    // End-to-end: monitor leaders through the chip, then check the
    // predictor's forecasts rank WLs correctly (a deadline scheduler
    // only needs correct relative order + tight absolute error).
    let config = NandConfig::small();
    let mut chip = NandChip::new(config, 21);
    let mut opm = Opm::new(&config.geometry, 1);
    let predictor = LatencyPredictor::new(chip.ispp());
    let g = config.geometry;

    chip.erase(BlockId(0)).unwrap();
    let mut pairs = Vec::new();
    for h in 0..g.hlayers_per_block {
        let leader = g.wl_addr(BlockId(0), h, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());
        let follower = g.wl_addr(BlockId(0), h, 1);
        let forecast = predictor.follower_tprog(&opm, 0, follower);
        let params = opm
            .follower_params(0, follower)
            .unwrap()
            .to_program_params();
        let actual = chip.program_wl(follower, WlData::host(3), &params).unwrap();
        pairs.push((forecast.latency_us, actual.latency_us));
    }
    for (f, a) in &pairs {
        assert!((f - a).abs() / a < 0.01, "forecast {f} vs actual {a}");
    }
}

#[test]
fn ps_aware_ecc_never_loses_and_wins_when_aged() {
    let ecc = EccModel::ldpc();
    let chip = NandChip::new(NandConfig::paper(), 9);
    let g = *chip.geometry();
    let rel = chip.reliability();
    let mut total_unaware = 0.0;
    let mut total_aware = 0.0;
    for b in 0..8u32 {
        for h in 0..g.hlayers_per_block {
            let raw = rel.ber(chip.process(), g.wl_addr(BlockId(b), h, 2), 2000, 12.0);
            let predicted = rel.ber(chip.process(), g.wl_addr(BlockId(b), h, 0), 2000, 12.0);
            let unaware = ecc.decode_escalating_us(raw).expect("correctable");
            let aware = ecc
                .decode_predicted_us(raw, predicted)
                .expect("correctable");
            // ΔH ≈ 1 means the leader's BER predicts the right mode, so
            // the PS-aware decode never pays *more* than escalation.
            assert!(aware <= unaware + 1e-9);
            total_unaware += unaware;
            total_aware += aware;
        }
    }
    assert!(
        total_aware < 0.95 * total_unaware,
        "PS-aware decoding should save time at end of life"
    );
}

#[test]
fn wam_active_block_knob_changes_behaviour_but_not_correctness() {
    let cfg = EvalConfig::smoke();
    for blocks in [1usize, 2, 3] {
        let mut ftl_cfg = cfg.ftl_config();
        ftl_cfg.active_blocks_per_chip = blocks;
        ftl_cfg.gc_free_block_threshold = ftl_cfg.gc_free_block_threshold.max(blocks);
        let r = run_eval_custom(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            ftl_cfg,
        );
        assert_eq!(r.completed, cfg.requests, "{blocks} active blocks");
    }
}

#[test]
fn trace_of_every_workload_replays_through_every_ftl() {
    let cfg = FtlConfig::small();
    for workload in StandardWorkload::ALL {
        let mut gen = workload.build(800, 7);
        let trace = Trace::record(gen.as_mut(), 400);
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let mut ftl = Ftl::new(kind, cfg);
            let mut sim = SsdSim::new(ssdsim::SsdConfig::small());
            sim.prefill(&mut ftl, 0..800);
            let r = sim.run(&mut ftl, trace.replay(), 400);
            assert_eq!(r.completed, 400, "{} on {}", kind.name(), trace.label());
        }
    }
}

#[test]
fn opm_is_shared_correctly_across_chips() {
    // Writes on chip 0 must not leak monitored parameters to chip 1.
    let cfg = FtlConfig::small();
    let mut ftl = Ftl::cube(cfg);
    let ctx = HostContext {
        buffer_utilization: 0.95,
        now_us: 0.0,
    };
    for i in 0..20u64 {
        ftl.write_wl(0, [i * 3, i * 3 + 1, i * 3 + 2], &ctx);
    }
    let opm = ftl.opm().expect("cubeFTL has an OPM");
    // Only chip 0's active h-layers carry parameters.
    let g = cfg.nand.geometry;
    let chip1_params = (0..g.hlayers_per_block)
        .filter(|h| {
            opm.follower_params(1, g.wl_addr(BlockId(0), *h, 1))
                .is_some()
        })
        .count();
    assert_eq!(chip1_params, 0, "chip 1 must have no monitored layers yet");
}
