//! Scalar anchors from the paper, checked end-to-end against the
//! calibrated model (see EXPERIMENTS.md for the full figure-by-figure
//! record).

use cubeftl::{BlockId, NandChip, NandConfig, ProgramParams};
use nand3d::ispp::split_margin_mv;
use nand3d::{delta_h, delta_v, AgingState, ReadParams, WlData};

fn chip() -> NandChip {
    NandChip::new(NandConfig::paper(), 2019)
}

#[test]
fn anchor_delta_h_is_virtually_one() {
    // Fig. 5: ΔH ≈ 1 for all aging conditions.
    let c = chip();
    let g = *c.geometry();
    for (pe, months) in [(0u32, 0.0f64), (2000, 1.0), (2000, 12.0)] {
        for b in (0..g.blocks_per_chip).step_by(37) {
            for h in (0..g.hlayers_per_block).step_by(5) {
                let bers: Vec<f64> = (0..g.wls_per_hlayer)
                    .map(|v| {
                        c.reliability()
                            .ber(c.process(), g.wl_addr(BlockId(b), h, v), pe, months)
                    })
                    .collect();
                assert!(delta_h(&bers) < 1.08);
            }
        }
    }
}

#[test]
fn anchor_delta_v_1_6_fresh_2_3_aged() {
    // Fig. 6: ΔV ≈ 1.6 fresh → ≈ 2.3 at 2K P/E + 1 year.
    let c = chip();
    let g = *c.geometry();
    let avg_dv = |pe: u32, months: f64| -> f64 {
        (0..48u32)
            .map(|b| {
                let bers: Vec<f64> = (0..g.hlayers_per_block)
                    .map(|h| {
                        c.reliability()
                            .ber(c.process(), g.wl_addr(BlockId(b), h, 0), pe, months)
                    })
                    .collect();
                delta_v(&bers)
            })
            .sum::<f64>()
            / 48.0
    };
    let fresh = avg_dv(0, 0.0);
    let aged = avg_dv(2000, 12.0);
    assert!((1.35..2.0).contains(&fresh), "fresh ΔV {fresh}");
    assert!((2.0..2.8).contains(&aged), "aged ΔV {aged}");
}

#[test]
fn anchor_default_tprog_700us_tread_80us() {
    // §5.1 typical latencies.
    let mut c = chip();
    c.erase(BlockId(0)).unwrap();
    let wl = c.geometry().wl_addr(BlockId(0), 12, 0);
    let report = c
        .program_wl(wl, WlData::host(0), &ProgramParams::default())
        .unwrap();
    assert!(
        (600.0..820.0).contains(&report.latency_us),
        "tPROG {}",
        report.latency_us
    );
    let page = c.geometry().page_addr(BlockId(0), 12, 0, 0);
    let read = c.read_page(page, ReadParams::default()).unwrap();
    assert!(
        (70.0..95.0).contains(&read.latency_us),
        "tREAD {}",
        read.latency_us
    );
}

#[test]
fn anchor_vfy_skip_saves_about_16_percent() {
    // §4.1.1: 16.2% average tPROG reduction from VFY skipping alone.
    let mut c = chip();
    let g = *c.geometry();
    let mut t_default = 0.0;
    let mut t_skip = 0.0;
    for b in 0..8u32 {
        c.erase(BlockId(b)).unwrap();
        for h in (0..g.hlayers_per_block).step_by(6) {
            let leader = g.wl_addr(BlockId(b), h, 0);
            let report = c
                .program_wl(leader, WlData::host(0), &ProgramParams::default())
                .unwrap();
            t_default += report.latency_us;
            let mut params = ProgramParams::default();
            for (s, iv) in report.loop_intervals.iter().enumerate() {
                params.n_skip[s] = iv.safe_skip();
            }
            let f = c
                .program_wl(g.wl_addr(BlockId(b), h, 1), WlData::host(3), &params)
                .unwrap();
            t_skip += f.latency_us;
        }
    }
    let reduction = 1.0 - t_skip / t_default;
    assert!(
        (0.12..0.20).contains(&reduction),
        "VFY-skip reduction {reduction:.3}"
    );
}

#[test]
fn anchor_320mv_removes_about_19_percent() {
    // Fig. 11(b).
    let c = chip();
    let g = *c.geometry();
    let engine = c.ispp();
    let chars = engine.characterize(c.process(), g.wl_addr(BlockId(3), 12, 1), c.env(), 0);
    let default = engine.program(&chars, &ProgramParams::default()).unwrap();
    let (up, down) = split_margin_mv(320.0, engine.ispp_model());
    let out = engine
        .program(
            &chars,
            &ProgramParams {
                v_start_up_mv: up,
                v_final_down_mv: down,
                ..ProgramParams::default()
            },
        )
        .unwrap();
    let reduction = 1.0 - out.latency_us / default.latency_us;
    assert!(
        (0.15..0.24).contains(&reduction),
        "320 mV reduction {reduction:.3}"
    );
}

#[test]
fn anchor_retry_fractions_0_30_90() {
    // §6.2's probabilistic retry model.
    let mut c = chip();
    let g = *c.geometry();
    // Write a page population.
    for b in 0..6u32 {
        c.erase(BlockId(b)).unwrap();
        for wl in g.wls_of_block(BlockId(b)).collect::<Vec<_>>() {
            c.program_wl(wl, WlData::host(0), &ProgramParams::default())
                .unwrap();
        }
    }
    for (state, expected) in [
        (AgingState::Fresh, 0.0),
        (AgingState::MidLife, 0.30),
        (AgingState::EndOfLife, 0.90),
    ] {
        c.set_aging(state);
        let mut retried = 0u32;
        let mut total = 0u32;
        for b in 0..6u32 {
            for wl in g.wls_of_block(BlockId(b)).collect::<Vec<_>>() {
                for page in g.pages_of_wl(wl).collect::<Vec<_>>() {
                    let r = c.read_page(page, ReadParams::default()).unwrap();
                    retried += u32::from(r.retries > 0);
                    total += 1;
                }
            }
        }
        let frac = f64::from(retried) / f64::from(total);
        assert!(
            (frac - expected).abs() < 0.05,
            "{state}: retry fraction {frac:.3}, expected {expected}"
        );
    }
}

#[test]
fn anchor_program_orders_are_reliability_equivalent() {
    // Fig. 13: <3% BER difference between orders (plus RTN noise).
    use cubeftl::ProgramOrder;
    let mut c = chip();
    let g = *c.geometry();
    let mut means = Vec::new();
    for order in ProgramOrder::ALL {
        let mut sum = 0.0;
        let mut n = 0.0;
        for rep in 0..4u32 {
            let b = BlockId(100 + rep);
            c.erase(b).unwrap();
            for wl in order.sequence(&g, b).collect::<Vec<_>>() {
                sum += c
                    .program_wl(wl, WlData::host(0), &ProgramParams::default())
                    .unwrap()
                    .post_ber;
                n += 1.0;
            }
        }
        means.push(sum / n);
    }
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.03, "order BER spread {:.4}", max / min);
}
