//! The kvsim application layer end to end through the harness:
//! defaults-off golden identity against the plain runners, engaged
//! byte-identical double runs, YCSB-A vs YCSB-C app-WA ordering,
//! worker-thread invariance on sharded arrays, trace-capture
//! round-trips, and property tests on the Zipf sampler and LSM engine.
//!
//! The thread-invariance test honours `CUBEFTL_KV_THREADS` (CI runs
//! the suite at 2 and 8) as the second worker-thread count.

use cubeftl::harness::{
    run_array_eval_traced, run_array_kv_eval, run_eval_capture, run_eval_traced, run_kv_eval,
    run_trace_eval, run_trace_eval_capture, ArrayEvalConfig, ArrayKvEvalReport, EvalConfig, KvSpec,
    TelemetrySpec,
};
use cubeftl::{
    splitmix64, AgingState, FtlKind, IntZipf, KvConfig, KvStream, LsmTree, SplitMix,
    StandardWorkload, Trace, YcsbKind,
};
use proptest::prelude::*;

const PAGE_BYTES: u64 = 16 * 1024;

fn cfg() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.requests = 2_500;
    cfg
}

/// A small engine shape so flushes and compactions cycle many times
/// inside a test-scale run.
fn spec(kind: YcsbKind) -> KvSpec {
    let mut kv = KvSpec::with_workload(kind);
    kv.keys = 2_048;
    kv.memtable_entries = 256;
    kv
}

/// Second worker-thread count of the invariance test: CI sets
/// `CUBEFTL_KV_THREADS` to 2 and 8; default 4 (= one per shard).
fn threads_under_test() -> usize {
    std::env::var("CUBEFTL_KV_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

#[test]
fn defaults_off_reproduces_run_eval_traced_byte_for_byte() {
    let cfg = cfg();
    let tel = TelemetrySpec::off();
    let plain = run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
        &tel,
    );
    let (r, t) = run_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::MidLife,
        &cfg,
        &KvSpec::off(),
        &tel,
        false,
    );
    assert!(r.app.is_none(), "disengaged run reports no app metrics");
    assert!(r.events.is_empty(), "disengaged run emits no KV events");
    assert!(r.captured.is_none());
    assert_eq!(
        format!("{:?} {:?}", r.sim, t),
        format!("{:?} {:?}", plain.0, plain.1),
        "disengaged KV runner must reproduce run_eval_traced exactly"
    );
}

#[test]
fn defaults_off_reproduces_run_array_eval_traced_byte_for_byte() {
    let cfg = cfg();
    let arr = ArrayEvalConfig::new(4);
    let tel = TelemetrySpec::off();
    let plain = run_array_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
        &arr,
        &tel,
    );
    let (r, t) = run_array_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Oltp,
        AgingState::Fresh,
        &cfg,
        &arr,
        &KvSpec::off(),
        &tel,
    );
    assert!(r.apps.is_empty());
    assert!(r.events.is_empty());
    assert_eq!(
        format!("{:?} {:?} {:?}", r.merged, r.shards, t),
        format!("{:?} {:?} {:?}", plain.0.merged, plain.0.shards, plain.1),
        "disengaged array KV runner must reproduce run_array_eval_traced exactly"
    );
}

#[test]
fn engaged_kv_run_is_byte_identical_across_reruns() {
    let cfg = cfg();
    let run = || {
        run_kv_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            &spec(YcsbKind::A),
            &TelemetrySpec::off(),
            false,
        )
    };
    let (a, _) = run();
    let (b, _) = run();
    let app = a.app.as_ref().expect("engaged run reports app metrics");
    assert!(app.stats.ops > 0, "measured ops ran");
    assert!(app.stats.flushes > 0, "memtable flushed at least once");
    assert_eq!(
        format!("{:?} {:?} {:?}", a.sim, a.app, a.events),
        format!("{:?} {:?} {:?}", b.sim, b.app, b.events),
        "engaged KV run must be deterministic"
    );
}

#[test]
fn ycsb_a_amplifies_writes_more_than_ycsb_c() {
    let cfg = cfg();
    let at = |kind: YcsbKind| {
        let (r, _) = run_kv_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            &spec(kind),
            &TelemetrySpec::off(),
            false,
        );
        r.app.expect("engaged")
    };
    let a = at(YcsbKind::A);
    let c = at(YcsbKind::C);
    assert!(
        a.app_wa_permille > 1000,
        "YCSB-A app-WA must exceed 1.0 ({} permille)",
        a.app_wa_permille
    );
    assert!(
        a.app_wa_permille > c.app_wa_permille,
        "update-heavy A must out-amplify read-only C ({} vs {})",
        a.app_wa_permille,
        c.app_wa_permille
    );
    assert_eq!(c.stats.updates, 0, "YCSB-C is read-only");
    assert!(
        a.stats.sst_pages_written + a.stats.wal_pages_written
            > c.stats.sst_pages_written + c.stats.wal_pages_written,
        "A must write more device pages than C"
    );
}

fn array_fingerprint(r: &ArrayKvEvalReport) -> String {
    format!("{:?} {:?} {:?} {:?}", r.merged, r.shards, r.apps, r.events)
}

#[test]
fn array_kv_run_is_identical_at_any_thread_count() {
    let cfg = cfg();
    let at = |threads: usize| {
        let mut arr = ArrayEvalConfig::new(4);
        arr.threads = threads;
        let (r, _) = run_array_kv_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
            &arr,
            &spec(YcsbKind::A),
            &TelemetrySpec::off(),
        );
        assert_eq!(r.apps.len(), 4, "one KV engine per shard");
        array_fingerprint(&r)
    };
    let one = at(1);
    assert_eq!(one, at(threads_under_test()), "1 vs env worker threads");
    assert_eq!(one, at(2), "1 vs 2 worker threads");
}

#[test]
fn kv_capture_round_trips_byte_identically() {
    let cfg = cfg();
    let (r, _) = run_kv_eval(
        FtlKind::Cube,
        StandardWorkload::Mail,
        AgingState::Fresh,
        &cfg,
        &spec(YcsbKind::A),
        &TelemetrySpec::off(),
        true,
    );
    let captured = r.captured.expect("capture requested");
    assert_eq!(captured.label(), "ycsb_a");
    let csv = captured.to_msr_csv(PAGE_BYTES);
    let parsed = Trace::from_msr_csv(&csv, PAGE_BYTES, 1 << 40).expect("captured CSV parses");
    assert_eq!(parsed.requests(), captured.requests());
    // Replaying the capture and re-capturing reproduces the same bytes.
    let (_, recaptured) = run_trace_eval_capture(FtlKind::Cube, AgingState::Fresh, &cfg, &parsed);
    assert_eq!(
        recaptured.to_msr_csv(PAGE_BYTES),
        csv,
        "capture -> replay -> capture must be byte-identical"
    );
}

#[test]
fn plain_workload_capture_round_trips_byte_identically() {
    let cfg = cfg();
    let (plain, _) = run_eval_traced(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::Fresh,
        &cfg,
        &TelemetrySpec::off(),
    );
    let (r, _, captured) = run_eval_capture(
        FtlKind::Cube,
        StandardWorkload::Web,
        AgingState::Fresh,
        &cfg,
        &TelemetrySpec::off(),
    );
    assert_eq!(
        format!("{r:?}"),
        format!("{plain:?}"),
        "capturing must not perturb the run"
    );
    assert_eq!(captured.len() as u64, r.completed);
    let csv = captured.to_msr_csv(PAGE_BYTES);
    let parsed = Trace::from_msr_csv(&csv, PAGE_BYTES, 1 << 40).expect("capture parses");
    let (_, recaptured) = run_trace_eval_capture(FtlKind::Cube, AgingState::Fresh, &cfg, &parsed);
    assert_eq!(recaptured.to_msr_csv(PAGE_BYTES), csv);
}

#[test]
fn shipped_ycsb_a_sample_trace_replays_deterministically() {
    let text = std::fs::read_to_string("tests/data/traces/ycsb_a.csv")
        .expect("shipped ycsb_a capture present");
    let trace = Trace::from_msr_csv(&text, PAGE_BYTES, 1 << 40).expect("ycsb_a trace parses");
    assert_eq!(trace.label(), "ycsb_a", "capture carries its label");
    assert!(trace.len() > 100, "non-trivial sample");
    let reads = trace
        .requests()
        .iter()
        .filter(|r| matches!(r.op, ssdsim::HostOp::Read))
        .count();
    assert!(reads > 0 && reads < trace.len(), "mixed op trace");
    let cfg = cfg();
    let run = || run_trace_eval(FtlKind::Cube, AgingState::Fresh, &cfg, &trace);
    let a = run();
    assert_eq!(a.completed, trace.len() as u64);
    assert_eq!(format!("{a:?}"), format!("{:?}", run()));
}

proptest! {
    /// The integer Zipf sampler stays in range and is a pure function
    /// of its RNG state.
    #[test]
    fn zipf_samples_stay_in_range_and_deterministic(
        n in 1u64..50_000,
        seed in 0u64..u64::MAX,
    ) {
        let z = IntZipf::new(n);
        let draw = |seed: u64| {
            let mut rng = SplitMix::new(seed);
            (0..64).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(seed);
        for &x in &a {
            prop_assert!(x < n, "sample {x} out of range 0..{n}");
        }
        prop_assert_eq!(a, draw(seed), "same seed must reproduce the stream");
    }

    /// No key is ever lost across arbitrary put/update sequences, no
    /// matter how many flushes and compactions they force.
    #[test]
    fn lsm_never_loses_a_key(
        puts in prop::collection::vec(0u64..512, 1..1_500),
    ) {
        let mut cfg = KvConfig::default_shape();
        cfg.keys = 512;
        cfg.memtable_entries = 64;
        cfg.sst_entries = 64;
        cfg.l0_files = 2;
        cfg.fanout = 2;
        cfg.max_levels = 3;
        let mut t = LsmTree::new(cfg, 8_192);
        for &k in &puts {
            t.put(k, false);
            while t.take_io().is_some() {}
        }
        for &k in &puts {
            prop_assert!(t.contains(k), "key {} lost", k);
        }
    }

    /// Bounded levels hold their size targets after maintenance, and
    /// the level count never exceeds the configured maximum.
    #[test]
    fn lsm_levels_stay_size_bounded(
        churn in 200u64..3_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut cfg = KvConfig::default_shape();
        cfg.keys = 512;
        cfg.memtable_entries = 64;
        cfg.sst_entries = 64;
        cfg.l0_files = 2;
        cfg.fanout = 2;
        cfg.max_levels = 3;
        let max_levels = cfg.max_levels as usize;
        let mut t = LsmTree::new(cfg, 8_192);
        for i in 0..churn {
            t.put(splitmix64(i ^ seed) % 512, false);
            while t.take_io().is_some() {}
        }
        prop_assert!(t.level_count() <= max_levels);
        prop_assert!(t.level_runs(0) < t.config().l0_files as usize);
        for n in 1..t.level_count().saturating_sub(1) {
            prop_assert!(
                t.level_entries(n) <= t.level_target(n as u32),
                "level {} over target after maintenance", n
            );
        }
    }

    /// The YCSB stream wrapper is a pure function of (kind, seed): two
    /// streams with equal parameters emit identical device requests.
    #[test]
    fn kv_stream_is_a_pure_function_of_its_seed(
        seed in 0u64..u64::MAX,
        kind_ix in 0usize..5,
    ) {
        let kind = [YcsbKind::A, YcsbKind::B, YcsbKind::C, YcsbKind::D, YcsbKind::F][kind_ix];
        let mut cfg = KvConfig::default_shape();
        cfg.keys = 1_024;
        cfg.memtable_entries = 128;
        cfg.sst_entries = 128;
        let draw = || {
            let mut s = KvStream::new(cfg, kind, 8_192, seed);
            (0..256).map(|_| s.next().expect("endless stream")).collect::<Vec<_>>()
        };
        prop_assert_eq!(draw(), draw());
    }
}
